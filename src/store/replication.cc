#include "store/replication.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32c.h"
#include "common/durable.h"
#include "common/error.h"

namespace ocep::store {
namespace {

namespace fs = std::filesystem;

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xffU));
  out.push_back(static_cast<char>((value >> 8U) & 0xffU));
  out.push_back(static_cast<char>((value >> 16U) & 0xffU));
  out.push_back(static_cast<char>((value >> 24U) & 0xffU));
}

std::uint32_t get_u32le(std::string_view data, std::uint64_t offset) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 1]))
          << 8U) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 2]))
          << 16U) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 3]))
          << 24U);
}

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7fU) | 0x80U));
    value >>= 7U;
  }
  out.push_back(static_cast<char>(value));
}

bool get_varint(std::string_view data, std::uint64_t& pos,
                std::uint64_t& out) {
  out = 0;
  int shift = 0;
  while (pos < data.size()) {
    const auto byte = static_cast<unsigned char>(data[pos++]);
    if (shift >= 64) {
      return false;
    }
    out |= static_cast<std::uint64_t>(byte & 0x7fU) << shift;
    if ((byte & 0x80U) == 0) {
      return true;
    }
    shift += 7;
  }
  return false;
}

bool read_whole_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out.assign((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return true;
}

/// magic(8) | u32 len | u32 crc | body, shared by hello and state.
std::string encode_envelope(std::string_view magic, std::string_view body) {
  std::string out(magic);
  put_u32le(out, static_cast<std::uint32_t>(body.size()));
  put_u32le(out, crc32c(body));
  out += body;
  return out;
}

/// Consumed bytes (> 0) with `body` set, 0 for short input, -1 corrupt.
std::int64_t try_decode_envelope(std::string_view buf, std::string_view magic,
                                 std::string_view& body) {
  if (buf.size() < magic.size() + 8) {
    return buf.size() >= magic.size() && buf.substr(0, magic.size()) != magic
               ? -1
               : 0;
  }
  if (buf.substr(0, magic.size()) != magic) {
    return -1;
  }
  const std::uint64_t len = get_u32le(buf, magic.size());
  if (len > kReplMaxFrameBytes) {
    return -1;
  }
  const std::uint64_t total = magic.size() + 8 + len;
  if (buf.size() < total) {
    return 0;
  }
  body = buf.substr(magic.size() + 8, len);
  if (crc32c(body) != get_u32le(buf, magic.size() + 4)) {
    return -1;
  }
  return static_cast<std::int64_t>(total);
}

}  // namespace

std::string encode_repl_hello(const ReplHello& hello) {
  std::string body;
  put_varint(body, hello.proto);
  put_varint(body, hello.shard_index);
  put_varint(body, hello.shard_count);
  return encode_envelope(kReplHelloMagic, body);
}

std::int64_t try_decode_repl_hello(std::string_view buf, ReplHello& out) {
  std::string_view body;
  const std::int64_t consumed = try_decode_envelope(buf, kReplHelloMagic, body);
  if (consumed <= 0) {
    return consumed;
  }
  std::uint64_t pos = 0;
  if (!get_varint(body, pos, out.proto) ||
      !get_varint(body, pos, out.shard_index) ||
      !get_varint(body, pos, out.shard_count) || pos != body.size()) {
    return -1;
  }
  return consumed;
}

std::string encode_repl_state(const std::vector<ReplSegmentState>& segments) {
  std::string body;
  put_varint(body, segments.size());
  for (const ReplSegmentState& seg : segments) {
    put_varint(body, seg.id);
    put_varint(body, seg.bytes);
    put_varint(body, seg.crc);
  }
  return encode_envelope(kReplStateMagic, body);
}

std::int64_t try_decode_repl_state(std::string_view buf,
                                   std::vector<ReplSegmentState>& out) {
  std::string_view body;
  const std::int64_t consumed = try_decode_envelope(buf, kReplStateMagic, body);
  if (consumed <= 0) {
    return consumed;
  }
  std::uint64_t pos = 0;
  std::uint64_t count = 0;
  if (!get_varint(body, pos, count) || count > (1U << 20U)) {
    return -1;
  }
  out.clear();
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
    std::uint64_t crc = 0;
    if (!get_varint(body, pos, id) || !get_varint(body, pos, bytes) ||
        !get_varint(body, pos, crc) || id == 0 || id > (1U << 20U) ||
        crc > 0xffffffffULL) {
      return -1;
    }
    out.push_back({static_cast<std::uint32_t>(id), bytes,
                   static_cast<std::uint32_t>(crc)});
  }
  if (pos != body.size()) {
    return -1;
  }
  return consumed;
}

std::string encode_repl_frame(ReplFrameType type, std::string_view payload) {
  std::string out;
  out.reserve(9 + payload.size());
  out.push_back(static_cast<char>(type));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, crc32c(payload));
  out += payload;
  return out;
}

std::int64_t try_decode_repl_frame(std::string_view buf, ReplFrameType& type,
                                   std::string& payload) {
  if (buf.empty()) {
    return 0;
  }
  const char t = buf[0];
  if (t != 'R' && t != 'S' && t != 'A' && t != 'C' && t != 'D' && t != 'K') {
    return -1;
  }
  if (buf.size() < 9) {
    return 0;
  }
  const std::uint64_t len = get_u32le(buf, 1);
  if (len > kReplMaxFrameBytes) {
    return -1;
  }
  if (buf.size() < 9 + len) {
    return 0;
  }
  const std::string_view body = buf.substr(9, len);
  if (crc32c(body) != get_u32le(buf, 5)) {
    return -1;
  }
  type = static_cast<ReplFrameType>(t);
  payload.assign(body);
  return static_cast<std::int64_t>(9 + len);
}

std::string encode_repl_open(std::uint32_t id) {
  std::string payload;
  put_varint(payload, id);
  return encode_repl_frame(ReplFrameType::kOpenSegment, payload);
}

bool decode_repl_open(std::string_view payload, std::uint32_t& id) {
  std::uint64_t pos = 0;
  std::uint64_t value = 0;
  if (!get_varint(payload, pos, value) || value == 0 ||
      value > (1U << 20U) || pos != payload.size()) {
    return false;
  }
  id = static_cast<std::uint32_t>(value);
  return true;
}

std::string encode_repl_append(std::uint32_t id, std::uint64_t offset,
                               std::string_view bytes) {
  std::string payload;
  payload.reserve(12 + bytes.size());
  put_varint(payload, id);
  put_varint(payload, offset);
  payload += bytes;
  return encode_repl_frame(ReplFrameType::kAppend, payload);
}

bool decode_repl_append(std::string_view payload, std::uint32_t& id,
                        std::uint64_t& offset, std::string_view& bytes) {
  std::uint64_t pos = 0;
  std::uint64_t value = 0;
  if (!get_varint(payload, pos, value) || value == 0 || value > (1U << 20U)) {
    return false;
  }
  id = static_cast<std::uint32_t>(value);
  if (!get_varint(payload, pos, offset)) {
    return false;
  }
  bytes = payload.substr(pos);
  return !bytes.empty();
}

std::string encode_repl_commit(std::uint64_t seq) {
  std::string payload;
  put_varint(payload, seq);
  return encode_repl_frame(ReplFrameType::kCommit, payload);
}

bool decode_repl_commit(std::string_view payload, std::uint64_t& seq) {
  std::uint64_t pos = 0;
  return get_varint(payload, pos, seq) && pos == payload.size();
}

std::string encode_repl_drop(std::uint32_t id) {
  std::string payload;
  put_varint(payload, id);
  return encode_repl_frame(ReplFrameType::kDrop, payload);
}

bool decode_repl_drop(std::string_view payload, std::uint32_t& id) {
  return decode_repl_open(payload, id);
}

std::string encode_repl_ack(const ReplAck& ack) {
  std::string payload;
  put_varint(payload, ack.seq);
  put_varint(payload, ack.segment);
  put_varint(payload, ack.offset);
  put_varint(payload, ack.records);
  return encode_repl_frame(ReplFrameType::kAck, payload);
}

bool decode_repl_ack(std::string_view payload, ReplAck& out) {
  std::uint64_t pos = 0;
  std::uint64_t segment = 0;
  if (!get_varint(payload, pos, out.seq) ||
      !get_varint(payload, pos, segment) || segment > (1U << 20U) ||
      !get_varint(payload, pos, out.offset) ||
      !get_varint(payload, pos, out.records) || pos != payload.size()) {
    return false;
  }
  out.segment = static_cast<std::uint32_t>(segment);
  return true;
}

std::uint64_t count_record_frames(std::string& pending,
                                  std::string_view chunk) {
  std::string_view data;
  const bool merged = !pending.empty();
  if (merged) {
    pending.append(chunk.data(), chunk.size());
    data = pending;
  } else {
    data = chunk;
  }
  std::uint64_t count = 0;
  std::uint64_t pos = 0;
  while (data.size() - pos >= 4) {
    const std::uint64_t len = get_u32le(data, pos);
    if (len == 0 || len > kMaxRecordBytes) {
      // Not a record boundary — the stream is damaged; stop counting
      // rather than buffering unbounded garbage.  Disk CRCs catch the
      // damage; the count only feeds a lag gauge.
      pending.clear();
      return count;
    }
    if (data.size() - pos < 8 + len) {
      break;
    }
    count += 1;
    pos += 8 + len;
  }
  if (merged) {
    pending.erase(0, pos);
  } else {
    pending.assign(chunk.substr(pos));
  }
  return count;
}

// --- ReplicaLog --------------------------------------------------------

ReplicaLog::ReplicaLog(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("cannot create replica directory: " + ec.message(),
                     dir_, -1);
  }
  open_existing();
}

ReplicaLog::~ReplicaLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string ReplicaLog::segment_path(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.log", id);
  return dir_ + "/" + name;
}

void ReplicaLog::write_manifest() {
  const std::string path = dir_ + "/manifest";
  if (ids_.empty()) {
    ::unlink(path.c_str());
    fsync_path(dir_);
    return;
  }
  // next id mirrors the primary's invariant: always max(ids) + 1, so the
  // manifest bytes match the primary's for the same segment set.
  if (!write_file_durable(path,
                          encode_manifest_file(ids_, ids_.back() + 1))) {
    throw StoreError("replica manifest write failed", path, -1);
  }
}

void ReplicaLog::wipe() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink((dir_ + "/manifest").c_str());
  ::unlink((dir_ + "/manifest.tmp").c_str());
  fsync_path(dir_);
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (ec || !entry.is_regular_file()) {
      continue;
    }
    if (parse_segment_file_name(entry.path().filename().string()) != 0) {
      ::unlink(entry.path().string().c_str());
    }
  }
  fsync_path(dir_);
  ids_.clear();
  size_ = 0;
  dirty_ = false;
  pending_.clear();
}

void ReplicaLog::open_active_fd() {
  const std::string path = segment_path(ids_.back());
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw StoreError("cannot open replica segment for append", path, -1);
  }
  std::error_code ec;
  size_ = static_cast<std::uint64_t>(fs::file_size(path, ec));
  if (ec) {
    throw StoreError("cannot stat replica segment", path, -1);
  }
  dirty_ = false;
  pending_.clear();
}

void ReplicaLog::seal_active() {
  if (fd_ < 0) {
    return;
  }
  // Seal durably before the successor exists, so a crash can only tear
  // the *last* segment — the one open() knows how to truncate.
  if (dirty_ && ::fdatasync(fd_) != 0) {
    throw StoreError("replica seal fdatasync failed",
                     segment_path(ids_.back()), -1);
  }
  ::close(fd_);
  fd_ = -1;
  dirty_ = false;
}

void ReplicaLog::open_existing() {
  std::string manifest;
  if (!read_whole_file(dir_ + "/manifest", manifest)) {
    // No manifest: a fresh replica, or a crash mid-reset.  Either way
    // segment files are dead bytes under manifest-is-truth.
    wipe();
    return;
  }
  std::string error;
  std::uint32_t next_id = 0;
  if (!decode_manifest_file(manifest, ids_, next_id, error)) {
    wipe();  // local damage; the primary will drive a full resync
    return;
  }
  ::unlink((dir_ + "/manifest.tmp").c_str());
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (ec || !entry.is_regular_file()) {
      continue;
    }
    const std::uint32_t id =
        parse_segment_file_name(entry.path().filename().string());
    if (id != 0 &&
        std::find(ids_.begin(), ids_.end(), id) == ids_.end()) {
      ::unlink(entry.path().string().c_str());
    }
  }
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const std::string path = segment_path(ids_[i]);
    std::string data;
    if (!read_whole_file(path, data) || data.size() < kSegmentHeaderBytes ||
        data.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
      wipe();
      return;
    }
    if (i + 1 == ids_.size()) {
      // Truncate the torn tail of the active segment back to the last
      // whole record frame; the primary resumes from exactly there.
      std::uint64_t offset = kSegmentHeaderBytes;
      Record scratch;
      while (offset < data.size()) {
        const std::uint64_t frame = try_parse_frame(data, offset, scratch);
        if (frame == 0) {
          break;
        }
        offset += frame;
      }
      if (offset < data.size()) {
        stats_.torn_tail_bytes += data.size() - offset;
        if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
          throw StoreError("replica torn-tail truncate failed", path,
                           static_cast<std::int64_t>(offset));
        }
        fsync_path(path);
      }
    }
  }
  open_active_fd();
}

std::vector<ReplSegmentState> ReplicaLog::state() const {
  std::vector<ReplSegmentState> out;
  out.reserve(ids_.size());
  for (const std::uint32_t id : ids_) {
    std::string data;
    if (!read_whole_file(segment_path(id), data)) {
      throw StoreError("replica segment unreadable", segment_path(id), -1);
    }
    out.push_back({id, data.size(), crc32c(data)});
  }
  return out;
}

void ReplicaLog::reset() {
  wipe();
  stats_.resets += 1;
}

void ReplicaLog::open_segment(std::uint32_t id) {
  if (!ids_.empty() && id <= ids_.back()) {
    throw StoreError("replica open_segment out of order", segment_path(id),
                     -1);
  }
  seal_active();
  const std::string path = segment_path(id);
  fd_ = ::open(path.c_str(),
               O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw StoreError("cannot create replica segment: " +
                         std::string(std::strerror(errno)),
                     path, -1);
  }
  const std::string header = encode_segment_header_bytes(id);
  std::size_t written = 0;
  while (written < header.size()) {
    const ssize_t n =
        ::write(fd_, header.data() + written, header.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw StoreError("replica segment header write failed", path, -1);
    }
    written += static_cast<std::size_t>(n);
  }
  // Header durable before the manifest names the segment — the same
  // rotation contract as the primary's SegmentLog.
  if (::fsync(fd_) != 0) {
    throw StoreError("replica segment header fsync failed", path, -1);
  }
  fsync_path(dir_);
  ids_.push_back(id);
  write_manifest();
  size_ = kSegmentHeaderBytes;
  dirty_ = false;
  pending_.clear();
}

void ReplicaLog::append(std::uint32_t id, std::uint64_t offset,
                        std::string_view bytes) {
  if (ids_.empty() || id != ids_.back() || fd_ < 0) {
    throw StoreError("replica append to non-active segment",
                     segment_path(id), -1);
  }
  if (offset != size_) {
    throw StoreError("replica append offset mismatch (have " +
                         std::to_string(size_) + ", got " +
                         std::to_string(offset) + ")",
                     segment_path(id), static_cast<std::int64_t>(offset));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw StoreError("replica append write failed", segment_path(id),
                       static_cast<std::int64_t>(size_));
    }
    written += static_cast<std::size_t>(n);
  }
  size_ += bytes.size();
  dirty_ = true;
  records_applied_ += count_record_frames(pending_, bytes);
  stats_.appends += 1;
  stats_.bytes_appended += bytes.size();
}

void ReplicaLog::drop_segment(std::uint32_t id) {
  const auto pos = std::find(ids_.begin(), ids_.end(), id);
  if (pos == ids_.end()) {
    throw StoreError("replica drop of unknown segment", segment_path(id), -1);
  }
  const bool was_active = id == ids_.back();
  if (was_active && fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ids_.erase(pos);
  write_manifest();
  ::unlink(segment_path(id).c_str());
  fsync_path(dir_);
  if (was_active) {
    size_ = 0;
    pending_.clear();
    if (!ids_.empty()) {
      open_active_fd();
    }
  }
}

void ReplicaLog::commit() {
  if (fd_ >= 0 && dirty_) {
    if (::fdatasync(fd_) != 0) {
      throw StoreError("replica commit fdatasync failed",
                       segment_path(ids_.back()), -1);
    }
    dirty_ = false;
  }
  stats_.commits += 1;
}

// --- compare_store_dirs ------------------------------------------------

namespace {

/// Log directories under a store root, keyed by a stable name.  A root
/// that is itself a log (has a manifest) maps to the single key ".".
std::vector<std::pair<std::string, std::string>> log_dirs(
    const std::string& root) {
  std::vector<std::pair<std::string, std::string>> out;
  std::error_code ec;
  if (fs::exists(root + "/manifest", ec)) {
    out.emplace_back(".", root);
    return out;
  }
  if (!fs::is_directory(root, ec)) {
    return out;
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (ec || !entry.is_directory()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0) {
      out.emplace_back(name, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void compare_logs(const std::string& dir_a, const std::string& dir_b,
                  CompareReport& report) {
  report.logs += 1;
  auto load = [&report](const std::string& dir,
                        std::vector<std::uint32_t>& ids) {
    std::string manifest;
    if (!read_whole_file(dir + "/manifest", manifest)) {
      return true;  // empty store: vacuously a prefix of anything
    }
    std::string error;
    std::uint32_t next_id = 0;
    if (!decode_manifest_file(manifest, ids, next_id, error)) {
      report.issues.push_back({dir + "/manifest", "manifest: " + error});
      return false;
    }
    return true;
  };
  std::vector<std::uint32_t> ids_a;
  std::vector<std::uint32_t> ids_b;
  if (!load(dir_a, ids_a) || !load(dir_b, ids_b)) {
    return;
  }
  for (const std::uint32_t id : ids_a) {
    if (std::find(ids_b.begin(), ids_b.end(), id) == ids_b.end()) {
      continue;  // lag or compaction skew, not divergence
    }
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%08u.log", id);
    const std::string path_a = dir_a + "/" + name;
    const std::string path_b = dir_b + "/" + name;
    std::string data_a;
    std::string data_b;
    if (!read_whole_file(path_a, data_a)) {
      report.issues.push_back({path_a, "segment named by manifest missing"});
      continue;
    }
    if (!read_whole_file(path_b, data_b)) {
      report.issues.push_back({path_b, "segment named by manifest missing"});
      continue;
    }
    const std::size_t common = std::min(data_a.size(), data_b.size());
    report.segments += 1;
    report.bytes_compared += common;
    if (std::memcmp(data_a.data(), data_b.data(), common) != 0) {
      std::size_t at = 0;
      while (at < common && data_a[at] == data_b[at]) {
        ++at;
      }
      report.issues.push_back(
          {path_a, "diverges from " + path_b + " at byte " +
                       std::to_string(at)});
    }
  }
}

}  // namespace

CompareReport compare_store_dirs(const std::string& a, const std::string& b) {
  CompareReport report;
  std::error_code ec;
  if (!fs::exists(a, ec)) {
    report.issues.push_back({a, "store root missing"});
    return report;
  }
  if (!fs::exists(b, ec)) {
    report.issues.push_back({b, "store root missing"});
    return report;
  }
  const auto dirs_a = log_dirs(a);
  const auto dirs_b = log_dirs(b);
  for (const auto& [name, dir_a] : dirs_a) {
    for (const auto& [name_b, dir_b] : dirs_b) {
      if (name == name_b) {
        compare_logs(dir_a, dir_b, report);
      }
    }
  }
  return report;
}

}  // namespace ocep::store
