#include "store/compactor.h"

#include <utility>
#include <vector>

namespace ocep::store {

void Compactor::schedule_rebase(const std::string& tenant) {
  if (rebase_queued_.insert(tenant).second) {
    rebase_queue_.push_back(tenant);
  }
}

bool Compactor::pick_segment() {
  if (config_.dead_ratio <= 0.0) {
    return false;
  }
  const std::vector<SegmentUsage> usage = store_.log().segment_usage();
  // Prune bookkeeping for segments the log already collected.
  std::set<std::uint32_t> present;
  for (const SegmentUsage& seg : usage) {
    present.insert(seg.id);
  }
  std::erase_if(barren_, [&present](std::uint32_t id) {
    return !present.contains(id);
  });

  std::uint32_t best = 0;
  std::uint64_t best_live = 0;
  for (const SegmentUsage& seg : usage) {
    if (!seg.sealed || seg.bytes == 0 || barren_.contains(seg.id)) {
      continue;
    }
    const std::uint64_t dead = seg.bytes - std::min(seg.live_bytes, seg.bytes);
    const double ratio =
        static_cast<double>(dead) / static_cast<double>(seg.bytes);
    if (ratio < config_.dead_ratio) {
      continue;
    }
    if (best == 0 || seg.live_bytes < best_live) {
      best = seg.id;
      best_live = seg.live_bytes;
    }
  }
  if (best == 0) {
    return false;
  }
  target_segment_ = best;
  stats_.segments_planned += 1;
  return true;
}

bool Compactor::run_rebase() {
  if (!rebase_fn_) {
    return false;
  }
  while (!rebase_queue_.empty()) {
    const std::string tenant = std::move(rebase_queue_.front());
    rebase_queue_.pop_front();
    if (rebase_fn_(tenant)) {
      rebase_queued_.erase(tenant);
      stats_.rebases_run += 1;
      return true;
    }
    // Not rebasable right now (mid-migration, detached): retry later,
    // behind everything already queued.
    stats_.rebase_failures += 1;
    rebase_queue_.push_back(tenant);
    if (rebase_queue_.front() == tenant) {
      return false;  // everything queued is stuck; yield
    }
  }
  return false;
}

bool Compactor::tick() {
  stats_.ticks += 1;
  bool worked = run_rebase();

  if (target_segment_ == 0 && !pick_segment()) {
    return worked;
  }
  const std::vector<std::pair<std::string, SpanKey>> spans =
      store_.spans_in_segment(target_segment_, config_.quantum_spans);
  if (spans.empty()) {
    // Nothing movable left: the survivors are bases/deltas that only a
    // rebase can retire, so stop re-picking this segment.
    barren_.insert(target_segment_);
    target_segment_ = 0;
    return worked;
  }
  for (const auto& [tenant, key] : spans) {
    store_.relocate_span(tenant, key);
    stats_.spans_moved += 1;
  }
  if (spans.size() < config_.quantum_spans) {
    target_segment_ = 0;  // segment drained of spans this tick
  }
  return true;
}

std::uint64_t Compactor::backlog() const {
  return rebase_queue_.size() + (target_segment_ != 0 ? 1 : 0);
}

void Compactor::quiesce() {
  target_segment_ = 0;
}

}  // namespace ocep::store
