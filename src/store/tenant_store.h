// Tenant durability on top of the segment log: the record semantics that
// turn an append-only byte log into incremental checkpoints.
//
// Per tenant the log holds (in append order, across restarts):
//
//   genesis  — the pattern list of a tenant created before its trace
//              announcement arrived (nothing else is coherent to save yet)
//   base     — a full OCEPNTC1 image (Tenant::checkpoint() bytes); written
//              once at re-base/spill/adopt, it supersedes everything the
//              tenant appended before it
//   delta    — the raw session wire bytes fed since the previous append;
//              recovery replays them through Tenant::feed(), and the
//              session's position dedup makes replay idempotent
//   tombstone — the tenant left this log (migrated to another shard);
//              scanning stops resurrecting it here
//
// Every record carries an epoch.  A base/genesis at epoch E supersedes
// records below E; deltas apply only at their exact epoch.  Migration
// bumps the epoch on the destination log, so when recovery scans every
// shard's log after a reshard, the copy with the highest epoch is the
// live one and stale images lose deterministically.
//
// The in-RAM index keeps only RecordRefs + epochs after drop_images();
// payload bytes are re-read from the log (CRC re-checked) when a spilled
// tenant is reloaded.  Superseded records are marked dead, and fully-dead
// sealed segments are collected by the log.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/segment_log.h"

namespace ocep::store {

/// Everything recovery needs to rebuild one tenant.
struct TenantImage {
  std::uint64_t epoch = 0;
  bool has_base = false;
  std::vector<std::string> patterns;  ///< meaningful when !has_base
  std::string base;                   ///< OCEPNTC1 bytes when has_base
  std::vector<std::string> deltas;    ///< wire bytes to replay, in order
};

struct TenantStoreStats {
  std::uint64_t genesis_appends = 0;
  std::uint64_t base_appends = 0;
  std::uint64_t delta_appends = 0;
  std::uint64_t tombstone_appends = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t orphan_deltas = 0;  ///< stale-epoch deltas seen at scan
  std::uint64_t span_appends = 0;
  std::uint64_t span_bytes = 0;
  std::uint64_t span_releases = 0;
  std::uint64_t spans_relocated = 0;  ///< compaction rewrites
  std::uint64_t orphan_spans = 0;     ///< unreferenced spans seen at scan
};

/// Matcher fingerprint of one spilled leaf-history span.  Unlike deltas,
/// spans carry no ordering constraint: the matcher's checkpoint names the
/// exact seqs it may fault back, so a span record is valid wherever it
/// sits in the log (which is what makes span relocation compaction-safe).
struct SpanKey {
  std::uint32_t pattern = 0;  ///< pattern index within the tenant
  std::uint32_t leaf = 0;     ///< leaf (event-class) index in the pattern
  std::uint64_t trace = 0;    ///< trace the entries belong to
  std::uint64_t seq = 0;      ///< matcher-wide monotonic spill sequence
  friend auto operator<=>(const SpanKey&, const SpanKey&) = default;
};

/// Decoded span record payload: the key plus the evicted history entries
/// as (event index, comm_before) pairs with indices strictly ascending.
struct SpanPayload {
  SpanKey key;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
};

class TenantStore {
 public:
  /// Opens `config.dir`, replaying the log into per-tenant images.
  /// Throws StoreError on corruption that is not a torn tail.
  explicit TenantStore(LogConfig config);

  TenantStore(const TenantStore&) = delete;
  TenantStore& operator=(const TenantStore&) = delete;

  /// Images recovered at open; consume, then call drop_images() to free
  /// the payload bytes (the ref/epoch index stays).
  [[nodiscard]] const std::map<std::string, TenantImage>& images() const {
    return images_;
  }
  void drop_images();

  /// Re-reads one tenant's image from disk (for un-spilling); throws
  /// StoreError when absent or unreadable.
  [[nodiscard]] TenantImage read_tenant(const std::string& name) const;

  /// 0 when the tenant has no live records here.
  [[nodiscard]] std::uint64_t epoch_of(const std::string& name) const;
  [[nodiscard]] bool has_base(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }

  /// `min_epoch` lets a re-homing shard outrank a foreign log's copy.
  void append_genesis(const std::string& name,
                      const std::vector<std::string>& patterns,
                      std::uint64_t min_epoch = 0);
  void append_delta(const std::string& name, std::string_view bytes);
  /// `min_epoch` lets an adopting shard outrank the source's copy.
  void append_base(const std::string& name, std::string_view blob,
                   std::uint64_t min_epoch = 0);
  void append_tombstone(const std::string& name);

  // --- spilled leaf-history spans ------------------------------------
  // Spans ride the tenant's current epoch but survive base supersede (a
  // re-base blob still references them by key); a tombstone or genesis
  // kills them with the incarnation they belong to.  A re-append with the
  // same key supersedes the earlier copy (last wins), which is what makes
  // crash-replay re-spills idempotent.

  /// Appends one spilled span; throws when the tenant has no live entry.
  RecordRef append_span(const std::string& name, const SpanPayload& span);
  [[nodiscard]] bool has_span(const std::string& name,
                              const SpanKey& key) const;
  /// Re-reads + decodes one span from disk (CRC re-checked); throws
  /// StoreError when absent or malformed.
  [[nodiscard]] SpanPayload read_span(const std::string& name,
                                      const SpanKey& key) const;
  /// Marks one span dead (faulted back for good, or abandoned); no-op
  /// when absent.
  void release_span(const std::string& name, const SpanKey& key);
  /// Restart reconcile: kills every stored span of `name` whose key is
  /// not in `live` (a crash can lose the deltas that would have re-spilled
  /// them, leaving records nothing will ever fault).
  void retain_spans(const std::string& name,
                    const std::vector<SpanKey>& live);
  [[nodiscard]] std::uint64_t span_count(const std::string& name) const;
  [[nodiscard]] std::uint64_t total_spans() const noexcept;

  /// Compaction support: up to `max` spans whose record currently lives
  /// in `segment`, oldest-offset first.
  [[nodiscard]] std::vector<std::pair<std::string, SpanKey>>
  spans_in_segment(std::uint32_t segment, std::size_t max) const;
  /// Rewrites one span at the log tail and kills the old copy (append
  /// first, then mark dead — a crash in between leaves two copies and
  /// last-wins scan dedup collapses them).
  void relocate_span(const std::string& name, const SpanKey& key);

  /// Group commit: flushes appended records to disk.
  void sync() { log_->sync(); }
  [[nodiscard]] bool dirty() const noexcept { return log_->dirty(); }

  [[nodiscard]] const LogStats& log_stats() const noexcept {
    return log_->stats();
  }
  /// The underlying log, for the replication tailer (same owner thread).
  [[nodiscard]] const SegmentLog& log() const noexcept { return *log_; }
  [[nodiscard]] const TenantStoreStats& stats() const noexcept {
    return stats_;
  }

  /// One-shot read-only scan of another shard's log directory (used when
  /// a restart repartitions tenants); empty map when the directory does
  /// not exist or holds an empty store.
  [[nodiscard]] static std::map<std::string, TenantImage> read_images(
      const std::string& dir);

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    bool has_base = false;
    bool has_genesis = false;
    RecordRef base_ref;     ///< base when has_base, else genesis record
    std::vector<RecordRef> delta_refs;
  };

  void on_scan(const Record& record, const RecordRef& ref);
  void kill_ref(const RecordRef& ref);
  void kill_entry_records(Entry& entry);
  void kill_tenant_spans(const std::string& name);
  [[nodiscard]] std::uint64_t next_epoch(const std::string& name) const;
  void retire_tombstone(const std::string& name, std::uint64_t epoch);

  std::unique_ptr<SegmentLog> log_;
  std::map<std::string, Entry> entries_;
  /// A tombstone stays live (its record guards earlier stale copies)
  /// until a genesis/base at a higher epoch supersedes it.
  struct Tombstone {
    RecordRef ref;
    std::uint64_t epoch = 0;
  };
  std::map<std::string, Tombstone> tombstones_;
  std::map<std::string, std::map<SpanKey, RecordRef>> spans_;
  std::map<std::string, TenantImage> images_;
  bool images_dropped_ = false;
  /// mark_dead calls deferred during the constructor scan (the log is
  /// not ready for compaction while it is still being replayed).
  std::vector<RecordRef> deferred_dead_;
  bool scanning_ = true;
  TenantStoreStats stats_;
};

/// Pattern-list payload codec for genesis records (varint count, then
/// length-prefixed strings) — shared with the inspector.
[[nodiscard]] std::string encode_patterns(
    const std::vector<std::string>& patterns);
[[nodiscard]] bool decode_patterns(std::string_view payload,
                                   std::vector<std::string>& out);

/// Span payload codec (pattern | leaf | trace | seq | count, then the
/// entries with delta-encoded indices) — shared with the inspector.
[[nodiscard]] std::string encode_span_payload(const SpanPayload& span);
[[nodiscard]] bool decode_span_payload(std::string_view payload,
                                       SpanPayload& out);
/// Decodes only the leading fingerprint (what the scan index needs).
[[nodiscard]] bool decode_span_key(std::string_view payload, SpanKey& out);

}  // namespace ocep::store
