// Warm-standby replication primitives: the wire framing a primary uses
// to ship its segment logs to a follower, the follower-side log writer,
// and the offline divergence check between two store directories.
//
// Protocol (one TCP connection per primary shard, primary connects):
//
//   primary -> follower   "OCEPREP1" | u32 len | u32 crc32c(body) | body
//                         body = varint proto | varint shard index |
//                                varint shard count
//   follower -> primary   "OCEPREPA" | u32 len | u32 crc32c(body) | body
//                         body = varint segment count, per segment:
//                                varint id | varint bytes | varint crc32c
//                                of the first `bytes` file bytes
//
// then a stream of frames, each  u8 type | u32 len | u32 crc32c | payload:
//
//   'R' reset         ()                      follower wipes its replica dir
//   'S' open segment  (varint id)             header + manifest, like rotate
//   'A' append        (varint id | varint offset | raw segment bytes)
//   'C' commit        (varint seq)            follower fdatasyncs, then acks
//   'D' drop segment  (varint id)             mirrors primary compaction
//   'K' ack           (varint seq | varint segment | varint offset |
//                      varint records)        follower -> primary, after 'C'
//
// The disk log is the replication buffer: the primary never queues
// unsent bytes in RAM across disconnects — on reconnect the follower's
// state frame names the resumable offsets, the primary CRC-verifies its
// own prefix against them, and anything incompatible degrades to a full
// resync ('R').  Shipped bytes are raw segment-file bytes, so a healthy
// follower is byte-prefix-identical to its primary (compare below).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/segment_log.h"

namespace ocep::store {

constexpr std::string_view kReplHelloMagic = "OCEPREP1";
constexpr std::string_view kReplStateMagic = "OCEPREPA";
constexpr std::uint64_t kReplProtoVersion = 1;
/// Bound on any single replication frame body; an append chunk is at
/// most one segment, and segments default to 4 MiB.
constexpr std::uint64_t kReplMaxFrameBytes = 64ULL << 20U;

enum class ReplFrameType : char {
  kReset = 'R',
  kOpenSegment = 'S',
  kAppend = 'A',
  kCommit = 'C',
  kDrop = 'D',
  kAck = 'K',
};

struct ReplHello {
  std::uint64_t proto = kReplProtoVersion;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
};

/// One follower segment as reported in the state frame: how many bytes
/// it holds and the CRC of exactly those bytes, so the primary can
/// verify the follower is a prefix of its own log before resuming.
struct ReplSegmentState {
  std::uint32_t id = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct ReplAck {
  std::uint64_t seq = 0;       ///< echoes the commit frame's sequence
  std::uint32_t segment = 0;   ///< durable position after the fdatasync
  std::uint64_t offset = 0;
  std::uint64_t records = 0;   ///< record frames applied this connection
};

// --- codec ------------------------------------------------------------
// try_decode_* return the bytes consumed (> 0), 0 when the buffer does
// not yet hold a whole frame, or -1 on corruption (bad magic, CRC or
// structure) — the caller drops the connection and lets retry handle it.

[[nodiscard]] std::string encode_repl_hello(const ReplHello& hello);
[[nodiscard]] std::int64_t try_decode_repl_hello(std::string_view buf,
                                                 ReplHello& out);

[[nodiscard]] std::string encode_repl_state(
    const std::vector<ReplSegmentState>& segments);
[[nodiscard]] std::int64_t try_decode_repl_state(
    std::string_view buf, std::vector<ReplSegmentState>& out);

[[nodiscard]] std::string encode_repl_frame(ReplFrameType type,
                                            std::string_view payload);
[[nodiscard]] std::int64_t try_decode_repl_frame(std::string_view buf,
                                                 ReplFrameType& type,
                                                 std::string& payload);

[[nodiscard]] std::string encode_repl_open(std::uint32_t id);
[[nodiscard]] bool decode_repl_open(std::string_view payload,
                                    std::uint32_t& id);
[[nodiscard]] std::string encode_repl_append(std::uint32_t id,
                                             std::uint64_t offset,
                                             std::string_view bytes);
[[nodiscard]] bool decode_repl_append(std::string_view payload,
                                      std::uint32_t& id,
                                      std::uint64_t& offset,
                                      std::string_view& bytes);
[[nodiscard]] std::string encode_repl_commit(std::uint64_t seq);
[[nodiscard]] bool decode_repl_commit(std::string_view payload,
                                      std::uint64_t& seq);
[[nodiscard]] std::string encode_repl_drop(std::uint32_t id);
[[nodiscard]] bool decode_repl_drop(std::string_view payload,
                                    std::uint32_t& id);
[[nodiscard]] std::string encode_repl_ack(const ReplAck& ack);
[[nodiscard]] bool decode_repl_ack(std::string_view payload, ReplAck& out);

/// Counts whole segment-log record frames in a raw byte stream that may
/// split frames across calls: feed each shipped chunk, carry persists in
/// `pending` (bytes buffered from an incomplete frame).  Both ends run
/// this over the same byte stream, so their counts agree.
[[nodiscard]] std::uint64_t count_record_frames(std::string& pending,
                                                std::string_view chunk);

// --- follower-side writer ---------------------------------------------

/// The standby's mirror of one primary shard's log directory.  Applies
/// the stream frames with the same durability discipline as SegmentLog
/// (segment header fsynced before the manifest names it; manifest via
/// tmp + fsync + rename + dir fsync), so a promoted replica replays
/// exactly like a crash-restarted primary.  Self-healing: any local
/// inconsistency found at open (corrupt manifest, bad header) wipes the
/// directory — the primary's state verification then drives a full
/// resync, which can never leave the follower divergent.
class ReplicaLog {
 public:
  struct Stats {
    std::uint64_t appends = 0;        ///< append frames applied
    std::uint64_t bytes_appended = 0;
    std::uint64_t commits = 0;
    std::uint64_t resets = 0;
    std::uint64_t torn_tail_bytes = 0;  ///< truncated at open
  };

  /// Opens (creating if absent) the replica directory and truncates any
  /// torn tail of the last segment back to a record-frame boundary.
  explicit ReplicaLog(std::string dir);
  ~ReplicaLog();

  ReplicaLog(const ReplicaLog&) = delete;
  ReplicaLog& operator=(const ReplicaLog&) = delete;

  /// Durable per-segment state for the handshake reply (reads + CRCs
  /// every segment file).
  [[nodiscard]] std::vector<ReplSegmentState> state() const;

  void reset();
  void open_segment(std::uint32_t id);
  void append(std::uint32_t id, std::uint64_t offset, std::string_view bytes);
  void drop_segment(std::uint32_t id);
  void commit();

  [[nodiscard]] std::uint32_t active_segment() const noexcept {
    return ids_.empty() ? 0 : ids_.back();
  }
  [[nodiscard]] std::uint64_t active_size() const noexcept { return size_; }
  /// Record frames fully applied over this object's lifetime; the
  /// standby acks per-connection deltas of this.
  [[nodiscard]] std::uint64_t records_applied() const noexcept {
    return records_applied_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string segment_path(std::uint32_t id) const;
  void write_manifest();
  void open_existing();
  void wipe();
  void open_active_fd();
  void seal_active();

  std::string dir_;
  std::vector<std::uint32_t> ids_;
  int fd_ = -1;          ///< active (last) segment, O_APPEND
  std::uint64_t size_ = 0;
  bool dirty_ = false;
  std::string pending_;  ///< record-frame carry for records_applied_
  std::uint64_t records_applied_ = 0;
  Stats stats_;
};

// --- offline divergence check (ocep_inspect --store A --compare B) -----

struct CompareIssue {
  std::string path;
  std::string message;
};

struct CompareReport {
  std::uint64_t logs = 0;            ///< log directories compared
  std::uint64_t segments = 0;        ///< segment pairs compared
  std::uint64_t bytes_compared = 0;
  std::vector<CompareIssue> issues;
  [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Byte-prefix comparison of two store roots (directories of shard-N
/// logs, or single log directories).  A healthy replica is a prefix of
/// its primary, so every segment present in both stores must agree on
/// their common prefix; a mismatch is divergence.  Segments or shards
/// present on only one side are lag or compaction skew, not divergence.
[[nodiscard]] CompareReport compare_store_dirs(const std::string& a,
                                               const std::string& b);

}  // namespace ocep::store
