#include "store/segment_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32c.h"
#include "common/durable.h"
#include "common/error.h"
#include "store/tenant_store.h"  // span payload codec, for verify_log

namespace ocep::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMaxSegments = 1U << 20U;
constexpr std::uint64_t kMaxNameBytes = 1024;

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xffU));
  out.push_back(static_cast<char>((value >> 8U) & 0xffU));
  out.push_back(static_cast<char>((value >> 16U) & 0xffU));
  out.push_back(static_cast<char>((value >> 24U) & 0xffU));
}

std::uint32_t get_u32le(std::string_view data, std::uint64_t offset) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 1]))
          << 8U) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 2]))
          << 16U) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(data[offset + 3]))
          << 24U);
}

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7fU) | 0x80U));
    value >>= 7U;
  }
  out.push_back(static_cast<char>(value));
}

bool get_varint(std::string_view data, std::uint64_t& pos,
                std::uint64_t& out) {
  out = 0;
  int shift = 0;
  while (pos < data.size()) {
    const auto byte = static_cast<unsigned char>(data[pos++]);
    if (shift >= 64) {
      return false;
    }
    out |= static_cast<std::uint64_t>(byte & 0x7fU) << shift;
    if ((byte & 0x80U) == 0) {
      return true;
    }
    shift += 7;
  }
  return false;
}

/// seg-NNNNNNNN.log -> id, or 0 when the name does not match the scheme.
std::uint32_t parse_segment_name(const std::string& name) {
  if (name.size() != 16 || name.compare(0, 4, "seg-") != 0 ||
      name.compare(12, 4, ".log") != 0) {
    return 0;
  }
  std::uint32_t id = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return 0;
    }
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return id;
}

std::string encode_manifest(const std::vector<std::uint32_t>& ids,
                            std::uint32_t next_id) {
  std::string body;
  put_varint(body, ids.size());
  for (const std::uint32_t id : ids) {
    put_varint(body, id);
  }
  put_varint(body, next_id);
  std::string file(kManifestMagic);
  put_u32le(file, crc32c(body));
  file += body;
  return file;
}

bool parse_manifest(std::string_view file, std::vector<std::uint32_t>& ids,
                    std::uint32_t& next_id, std::string& error) {
  if (file.size() < kManifestMagic.size() + 4 ||
      file.substr(0, kManifestMagic.size()) != kManifestMagic) {
    error = "bad magic";
    return false;
  }
  const std::string_view body = file.substr(kManifestMagic.size() + 4);
  if (crc32c(body) != get_u32le(file, kManifestMagic.size())) {
    error = "CRC mismatch";
    return false;
  }
  std::uint64_t pos = 0;
  std::uint64_t count = 0;
  if (!get_varint(body, pos, count) || count == 0 || count > kMaxSegments) {
    error = "implausible segment count";
    return false;
  }
  ids.clear();
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    if (!get_varint(body, pos, id) || id == 0 || id <= prev ||
        id > kMaxSegments) {
      error = "segment ids not ascending";
      return false;
    }
    ids.push_back(static_cast<std::uint32_t>(id));
    prev = id;
  }
  std::uint64_t next = 0;
  if (!get_varint(body, pos, next) || next <= prev || pos != body.size()) {
    error = "trailing bytes";
    return false;
  }
  next_id = static_cast<std::uint32_t>(next);
  return true;
}

std::string encode_segment_header(std::uint32_t id) {
  std::string head(kSegmentMagic);
  std::string id_bytes;
  put_u32le(id_bytes, id);
  head += id_bytes;
  put_u32le(head, crc32c(id_bytes));
  return head;
}

bool read_whole_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out.assign((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return true;
}

/// Any parseable record at or after `offset`?  Distinguishes a torn tail
/// (garbage to end of file — safe to truncate) from mid-log corruption
/// (valid data beyond the failure — records would vanish silently).
bool valid_frame_after(std::string_view data, std::uint64_t offset) {
  Record scratch;
  for (std::uint64_t p = offset; p + 9 <= data.size(); ++p) {
    if (try_parse_frame(data, p, scratch) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string encode_record_body(const Record& record) {
  std::string body;
  body.reserve(2 + 10 + record.name.size() + record.payload.size());
  body.push_back(static_cast<char>(record.type));
  put_varint(body, record.epoch);
  put_varint(body, record.name.size());
  body += record.name;
  body += record.payload;
  return body;
}

bool decode_record_body(std::string_view body, Record& out) {
  if (body.empty()) {
    return false;
  }
  const auto type = static_cast<std::uint8_t>(body[0]);
  if (type < static_cast<std::uint8_t>(RecordType::kGenesis) ||
      type > static_cast<std::uint8_t>(RecordType::kSpan)) {
    return false;
  }
  std::uint64_t pos = 1;
  std::uint64_t epoch = 0;
  std::uint64_t name_len = 0;
  if (!get_varint(body, pos, epoch) || !get_varint(body, pos, name_len) ||
      name_len == 0 || name_len > kMaxNameBytes ||
      pos + name_len > body.size()) {
    return false;
  }
  out.type = static_cast<RecordType>(type);
  out.epoch = epoch;
  out.name.assign(body.substr(pos, name_len));
  out.payload.assign(body.substr(pos + name_len));
  return true;
}

std::string encode_manifest_file(const std::vector<std::uint32_t>& ids,
                                 std::uint32_t next_id) {
  return encode_manifest(ids, next_id);
}

bool decode_manifest_file(std::string_view file,
                          std::vector<std::uint32_t>& ids,
                          std::uint32_t& next_id, std::string& error) {
  return parse_manifest(file, ids, next_id, error);
}

std::string encode_segment_header_bytes(std::uint32_t id) {
  return encode_segment_header(id);
}

std::uint32_t parse_segment_file_name(const std::string& name) {
  return parse_segment_name(name);
}

std::uint64_t try_parse_frame(std::string_view data, std::uint64_t offset,
                              Record& out) {
  if (offset + 8 > data.size()) {
    return 0;
  }
  const std::uint64_t len = get_u32le(data, offset);
  if (len == 0 || len > kMaxRecordBytes || offset + 8 + len > data.size()) {
    return 0;
  }
  const std::string_view body = data.substr(offset + 8, len);
  if (crc32c(body) != get_u32le(data, offset + 4)) {
    return 0;
  }
  if (!decode_record_body(body, out)) {
    return 0;
  }
  return 8 + len;
}

SegmentLog::SegmentLog(LogConfig config, const ScanCallback& on_scan)
    : config_(std::move(config)) {
  if (config_.segment_bytes < kSegmentHeaderBytes + 16) {
    config_.segment_bytes = kSegmentHeaderBytes + 16;
  }
  if (!config_.read_only) {
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    if (ec) {
      throw StoreError("cannot create store directory: " + ec.message(),
                       config_.dir, -1);
    }
  }
  open_or_create();
  for (std::size_t i = 0; i < segment_ids_.size(); ++i) {
    scan_segment(segment_ids_[i], i + 1 == segment_ids_.size(), on_scan);
  }
  stats_.segments = segment_ids_.size();
}

SegmentLog::~SegmentLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string SegmentLog::segment_path(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.log", id);
  return config_.dir + "/" + name;
}

void SegmentLog::hook(CrashEdge edge, const std::string& detail) const {
  if (config_.crash_hook) {
    config_.crash_hook(edge, detail);
  }
}

void SegmentLog::full_write(std::string_view bytes, const char* what) {
  hook(CrashEdge::kWrite, std::string("pre:") + what);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw StoreError(std::string(what) + ": write failed: " +
                           std::strerror(errno),
                       config_.dir, -1);
    }
    written += static_cast<std::size_t>(n);
  }
  hook(CrashEdge::kWrite, std::string("post:") + what);
}

void SegmentLog::write_manifest() {
  const std::string file = encode_manifest(segment_ids_, next_segment_id_);
  const std::string path = config_.dir + "/manifest";
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw StoreError("manifest: cannot open tmp: " +
                         std::string(std::strerror(errno)),
                     tmp, -1);
  }
  hook(CrashEdge::kWrite, "pre:manifest");
  std::size_t written = 0;
  bool ok = true;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written, file.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  hook(CrashEdge::kWrite, "post:manifest");
  hook(CrashEdge::kSync, "pre:manifest");
  ok = ok && ::fsync(fd) == 0;
  hook(CrashEdge::kSync, "post:manifest");
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    throw StoreError("manifest: write failed", tmp, -1);
  }
  hook(CrashEdge::kRename, "pre:manifest");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw StoreError("manifest: rename failed: " +
                         std::string(std::strerror(errno)),
                     path, -1);
  }
  hook(CrashEdge::kRename, "post:manifest");
  hook(CrashEdge::kSync, "pre:manifest-dir");
  fsync_path(config_.dir);
  hook(CrashEdge::kSync, "post:manifest-dir");
}

void SegmentLog::create_segment(std::uint32_t id) {
  const std::string path = segment_path(id);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND |
                                 O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw StoreError("cannot create segment: " +
                         std::string(std::strerror(errno)),
                     path, -1);
  }
  full_write(encode_segment_header(id), "segment-header");
  // The header must be durable before the manifest can name the segment:
  // rotation's crash contract is "a manifest-listed segment always has a
  // valid header".
  hook(CrashEdge::kSync, "pre:segment-create");
  if (::fsync(fd_) != 0) {
    throw StoreError("segment header fsync failed", path, -1);
  }
  fsync_path(config_.dir);
  hook(CrashEdge::kSync, "post:segment-create");
  write_offset_ = kSegmentHeaderBytes;
  synced_offset_ = kSegmentHeaderBytes;
  dirty_ = false;
}

void SegmentLog::open_or_create() {
  const std::string manifest_path = config_.dir + "/manifest";
  std::error_code ec;
  std::vector<std::pair<std::uint32_t, std::string>> present;
  if (fs::is_directory(config_.dir, ec)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config_.dir, ec)) {
      if (ec || !entry.is_regular_file()) {
        continue;
      }
      const std::string name = entry.path().filename().string();
      if (const std::uint32_t id = parse_segment_name(name); id != 0) {
        present.emplace_back(id, entry.path().string());
      }
    }
  }

  std::string manifest;
  if (!read_whole_file(manifest_path, manifest)) {
    // No manifest.  A fresh directory, or a crash before the very first
    // manifest write — in which case every segment present must still be
    // empty (record appends only start once the manifest exists).
    for (const auto& [id, path] : present) {
      if (fs::file_size(path, ec) > kSegmentHeaderBytes) {
        throw StoreError("segments present without a manifest", path, -1);
      }
    }
    if (config_.read_only) {
      return;  // an empty (or not-yet-created) store
    }
    for (const auto& [id, path] : present) {
      ::unlink(path.c_str());
    }
    create_segment(1);
    segment_ids_ = {1};
    next_segment_id_ = 2;
    write_manifest();
    return;
  }

  std::string error;
  if (!parse_manifest(manifest, segment_ids_, next_segment_id_, error)) {
    throw StoreError("manifest: " + error, manifest_path, -1);
  }
  if (!config_.read_only) {
    // Orphans — a segment created whose manifest write never landed, or
    // one a crashed compaction dropped from the manifest but could not
    // unlink — are dead by the manifest-is-truth rule.
    for (const auto& [id, path] : present) {
      if (std::find(segment_ids_.begin(), segment_ids_.end(), id) ==
          segment_ids_.end()) {
        ::unlink(path.c_str());
      }
    }
    ::unlink((manifest_path + ".tmp").c_str());
  }
}

void SegmentLog::scan_segment(std::uint32_t id, bool last,
                              const ScanCallback& on_scan) {
  const std::string path = segment_path(id);
  std::string data;
  if (!read_whole_file(path, data)) {
    throw StoreError("segment named by manifest is missing", path, -1);
  }
  if (data.size() < kSegmentHeaderBytes ||
      data.substr(0, kSegmentMagic.size()) != kSegmentMagic ||
      get_u32le(data, 8) != id ||
      crc32c(std::string_view(data).substr(8, 4)) != get_u32le(data, 12)) {
    // Rotation fsyncs the header before the manifest names the segment,
    // so a bad header is disk corruption, never a torn write.
    throw StoreError("bad segment header", path, 0);
  }
  std::uint64_t offset = kSegmentHeaderBytes;
  std::uint64_t end = data.size();
  while (offset < end) {
    Record record;
    const std::uint64_t frame = try_parse_frame(data, offset, record);
    if (frame == 0) {
      if (last && !valid_frame_after(data, offset)) {
        // Torn tail: an append (or its tail) that never completed before
        // the crash.  Discard — the loss is bounded by the group-commit
        // interval — and reclaim the bytes so appends restart cleanly.
        stats_.torn_tail_bytes += end - offset;
        if (!config_.read_only) {
          if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
            throw StoreError("torn-tail truncate failed", path,
                             static_cast<std::int64_t>(offset));
          }
          fsync_path(path);
        }
        end = offset;
        break;
      }
      throw StoreError("corrupt record", path,
                       static_cast<std::int64_t>(offset));
    }
    const RecordRef ref{id, offset,
                        frame};
    live_bytes_[id] += frame;
    stats_.records += 1;
    stats_.live_bytes += frame;
    stats_.total_bytes += frame;
    if (on_scan) {
      on_scan(record, ref);
    }
    offset += frame;
  }
  if (last && !config_.read_only) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) {
      throw StoreError("cannot reopen active segment", path, -1);
    }
    write_offset_ = end;
    synced_offset_ = end;
    dirty_ = false;
  }
}

RecordRef SegmentLog::append(const Record& record) {
  if (config_.read_only || fd_ < 0) {
    throw StoreError("append to a read-only store", config_.dir, -1);
  }
  const std::string body = encode_record_body(record);
  if (body.size() > kMaxRecordBytes) {
    throw StoreError("record exceeds the 1 GiB frame bound", config_.dir, -1);
  }
  std::string frame;
  frame.reserve(8 + body.size());
  put_u32le(frame, static_cast<std::uint32_t>(body.size()));
  put_u32le(frame, crc32c(body));
  frame += body;
  const RecordRef ref{segment_ids_.back(), write_offset_, frame.size()};
  try {
    full_write(frame, "append");
  } catch (...) {
    // Make a failed append atomic so the caller may retry on the next
    // flush tick (disk-fault degradation): drop any partial frame tail.
    static_cast<void>(::ftruncate(fd_, static_cast<off_t>(write_offset_)));
    throw;
  }
  write_offset_ += frame.size();
  dirty_ = true;
  live_bytes_[ref.segment] += frame.size();
  stats_.appends += 1;
  stats_.records += 1;
  stats_.live_bytes += frame.size();
  stats_.total_bytes += frame.size();
  if (write_offset_ >= config_.segment_bytes) {
    rotate();
  }
  return ref;
}

void SegmentLog::rotate() {
  // Seal the full segment durably, then create + fsync the successor
  // BEFORE the manifest names it: a crash at any edge leaves either the
  // old manifest (orphan empty successor, cleaned at open) or the new
  // one (empty last segment, valid).  Appends move only after both.
  sync();
  ::close(fd_);
  fd_ = -1;
  const std::uint32_t id = next_segment_id_++;
  create_segment(id);
  segment_ids_.push_back(id);
  write_manifest();
  stats_.rotations += 1;
  stats_.segments = segment_ids_.size();
}

void SegmentLog::sync() {
  if (!dirty_ || fd_ < 0) {
    return;
  }
  hook(CrashEdge::kSync, "pre:segment");
  if (::fdatasync(fd_) != 0) {
    throw StoreError("segment fdatasync failed", segment_path(
                         segment_ids_.back()),
                     -1);
  }
  hook(CrashEdge::kSync, "post:segment");
  synced_offset_ = write_offset_;
  dirty_ = false;
  stats_.syncs += 1;
}

void SegmentLog::mark_dead(const RecordRef& ref) {
  stats_.records -= stats_.records == 0 ? 0 : 1;
  stats_.live_bytes -= std::min(stats_.live_bytes, ref.frame_bytes);
  const auto it = live_bytes_.find(ref.segment);
  if (it == live_bytes_.end()) {
    return;
  }
  it->second -= std::min(it->second, ref.frame_bytes);
  if (config_.read_only || it->second != 0 || segment_ids_.empty() ||
      ref.segment == segment_ids_.back()) {
    return;
  }
  // Fully-dead sealed segment: drop it from the manifest durably first,
  // then unlink.  A crash in between leaves an orphan file, which the
  // next open deletes under the manifest-is-truth rule.
  const auto pos =
      std::find(segment_ids_.begin(), segment_ids_.end(), ref.segment);
  if (pos == segment_ids_.end()) {
    return;
  }
  segment_ids_.erase(pos);
  write_manifest();
  ::unlink(segment_path(ref.segment).c_str());
  fsync_path(config_.dir);
  live_bytes_.erase(it);
  stats_.segments_deleted += 1;
  stats_.segments = segment_ids_.size();
}

std::vector<SegmentView> SegmentLog::segments() const {
  std::vector<SegmentView> views;
  views.reserve(segment_ids_.size());
  for (std::size_t i = 0; i < segment_ids_.size(); ++i) {
    const std::uint32_t id = segment_ids_[i];
    SegmentView view;
    view.id = id;
    if (i + 1 == segment_ids_.size() && fd_ >= 0) {
      view.bytes = synced_offset_;
    } else {
      std::error_code ec;
      const std::uintmax_t size = fs::file_size(segment_path(id), ec);
      if (ec) {
        throw StoreError("cannot stat segment: " + ec.message(),
                         segment_path(id), -1);
      }
      view.bytes = static_cast<std::uint64_t>(size);
    }
    views.push_back(view);
  }
  return views;
}

std::vector<SegmentUsage> SegmentLog::segment_usage() const {
  const std::vector<SegmentView> views = segments();
  std::vector<SegmentUsage> usage;
  usage.reserve(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    SegmentUsage entry;
    entry.id = views[i].id;
    entry.bytes = views[i].bytes > kSegmentHeaderBytes
                      ? views[i].bytes - kSegmentHeaderBytes
                      : 0;
    if (const auto it = live_bytes_.find(entry.id); it != live_bytes_.end()) {
      entry.live_bytes = it->second;
    }
    entry.sealed = i + 1 != views.size();
    usage.push_back(entry);
  }
  return usage;
}

std::string SegmentLog::read_range(std::uint32_t id, std::uint64_t offset,
                                   std::uint64_t max_bytes) const {
  if (std::find(segment_ids_.begin(), segment_ids_.end(), id) ==
      segment_ids_.end()) {
    throw StoreError("read_range of unknown segment", segment_path(id), -1);
  }
  std::uint64_t end = 0;
  if (!segment_ids_.empty() && id == segment_ids_.back() && fd_ >= 0) {
    end = synced_offset_;
  } else {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(segment_path(id), ec);
    if (ec) {
      throw StoreError("cannot stat segment: " + ec.message(),
                       segment_path(id), -1);
    }
    end = static_cast<std::uint64_t>(size);
  }
  if (offset >= end || max_bytes == 0) {
    return {};
  }
  const std::string path = segment_path(id);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw StoreError("cannot reopen segment for tailing", path,
                     static_cast<std::int64_t>(offset));
  }
  std::string out(static_cast<std::size_t>(std::min(max_bytes, end - offset)),
                  '\0');
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + got));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      ::close(fd);
      throw StoreError("short read while tailing segment", path,
                       static_cast<std::int64_t>(offset + got));
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return out;
}

std::string SegmentLog::read_payload(const RecordRef& ref) const {
  const std::string path = segment_path(ref.segment);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw StoreError("cannot reopen segment for read", path,
                     static_cast<std::int64_t>(ref.offset));
  }
  std::string frame(ref.frame_bytes, '\0');
  std::size_t got = 0;
  while (got < frame.size()) {
    const ssize_t n = ::pread(fd, frame.data() + got, frame.size() - got,
                              static_cast<off_t>(ref.offset + got));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ::close(fd);
      throw StoreError("short read of stored record", path,
                       static_cast<std::int64_t>(ref.offset));
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  Record record;
  if (try_parse_frame(frame, 0, record) != ref.frame_bytes) {
    throw StoreError("stored record failed re-read CRC", path,
                     static_cast<std::int64_t>(ref.offset));
  }
  return std::move(record.payload);
}

VerifyReport verify_log(const std::string& dir) {
  VerifyReport report;
  const std::string manifest_path = dir + "/manifest";
  std::error_code ec;

  std::vector<std::pair<std::uint32_t, std::string>> present;
  if (fs::is_directory(dir, ec)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(dir, ec)) {
      if (ec || !entry.is_regular_file()) {
        continue;
      }
      if (const std::uint32_t id =
              parse_segment_name(entry.path().filename().string());
          id != 0) {
        present.emplace_back(id, entry.path().string());
      }
    }
  }

  std::string manifest;
  std::vector<std::uint32_t> ids;
  std::uint32_t next_id = 0;
  if (!read_whole_file(manifest_path, manifest)) {
    for (const auto& [id, path] : present) {
      if (fs::file_size(path, ec) > kSegmentHeaderBytes) {
        report.issues.push_back(
            {path, -1, "segment has records but no manifest exists", true});
      }
    }
    return report;  // an empty / never-created store is fine
  }
  std::string error;
  if (!parse_manifest(manifest, ids, next_id, error)) {
    report.issues.push_back({manifest_path, -1, "manifest: " + error, true});
    return report;
  }
  report.segments = ids.size();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t id = ids[i];
    const bool last = i + 1 == ids.size();
    std::string path = dir + "/";
    {
      char name[32];
      std::snprintf(name, sizeof(name), "seg-%08u.log", id);
      path += name;
    }
    std::string data;
    if (!read_whole_file(path, data)) {
      report.issues.push_back(
          {path, -1, "segment named by manifest is missing", true});
      continue;
    }
    if (data.size() < kSegmentHeaderBytes ||
        data.substr(0, kSegmentMagic.size()) != kSegmentMagic ||
        get_u32le(data, 8) != id ||
        crc32c(std::string_view(data).substr(8, 4)) != get_u32le(data, 12)) {
      report.issues.push_back({path, 0, "bad segment header", true});
      continue;
    }
    std::uint64_t offset = kSegmentHeaderBytes;
    while (offset < data.size()) {
      Record record;
      const std::uint64_t frame = try_parse_frame(data, offset, record);
      if (frame == 0) {
        if (last && !valid_frame_after(data, offset)) {
          report.torn_tail_bytes += data.size() - offset;
          report.issues.push_back(
              {path, static_cast<std::int64_t>(offset),
               "torn tail: " + std::to_string(data.size() - offset) +
                   " bytes past the last valid record",
               false});
        } else {
          report.issues.push_back({path, static_cast<std::int64_t>(offset),
                                   "record fails CRC/length check", true});
        }
        break;
      }
      report.records += 1;
      report.record_bytes += frame;
      TenantCounts& counts = report.tenants[record.name];
      switch (record.type) {
        case RecordType::kGenesis:
          counts.genesis += 1;
          break;
        case RecordType::kBase:
          counts.bases += 1;
          break;
        case RecordType::kDelta:
          counts.deltas += 1;
          break;
        case RecordType::kTombstone:
          counts.tombstones += 1;
          break;
        case RecordType::kSpan: {
          counts.spans += 1;
          SpanPayload span;
          if (!decode_span_payload(record.payload, span)) {
            // The log frame is intact but the store layer cannot use it;
            // runtime scanning kills it as an orphan, so note, not fatal.
            report.issues.push_back({path, static_cast<std::int64_t>(offset),
                                     "span record payload does not decode",
                                     false});
          }
          break;
        }
      }
      counts.bytes += record.payload.size();
      counts.last_epoch = std::max(counts.last_epoch, record.epoch);
      offset += frame;
    }
  }
  for (const auto& [id, path] : present) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      report.issues.push_back(
          {path, -1, "orphan segment not named by the manifest", false});
    }
  }
  return report;
}

}  // namespace ocep::store
