// Per-shard background compaction scheduler: the rebase + segment-rewrite
// work that used to run inline on the flush tick, sliced into bounded
// quanta the reactor runs between poll waits.
//
// Not a thread.  The compactor is an incremental state machine driven by
// tick() on the shard thread that owns the store, so it composes with the
// single-owner SegmentLog contract, with SIGTERM drain, and with the
// migration freeze: quiesce() abandons the in-flight plan and the log is
// untouched until the next tick.
//
// Two kinds of work:
//   - span relocation: a sealed segment whose dead-byte ratio crosses the
//     trigger gets its live span records rewritten at the log tail (spans
//     are position-free — see tenant_store.h — so this is the only record
//     type that is safe to relocate).  Once the segment's remaining live
//     bytes are bases/deltas only, scheduled rebases supersede those and
//     the log collects the fully-dead segment;
//   - rebases: the owner enqueues tenants whose delta chain outgrew its
//     threshold; tick() runs at most one per quantum through the rebase
//     callback (which writes a fresh base and lets old records die).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "store/tenant_store.h"

namespace ocep::store {

struct CompactorConfig {
  /// Dead-byte ratio on a sealed segment that triggers span relocation;
  /// <= 0 disables segment rewriting.
  double dead_ratio = 0.5;
  /// Spans relocated per tick — the yield quantum.
  std::size_t quantum_spans = 8;
};

struct CompactorStats {
  std::uint64_t ticks = 0;
  std::uint64_t spans_moved = 0;
  std::uint64_t segments_planned = 0;
  std::uint64_t rebases_run = 0;
  std::uint64_t rebase_failures = 0;
};

class Compactor {
 public:
  /// Returns false when the tenant cannot be rebased right now (it is
  /// re-enqueued and retried on a later tick).
  using RebaseFn = std::function<bool(const std::string& tenant)>;

  Compactor(TenantStore& store, CompactorConfig config)
      : store_(store), config_(config) {}

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void set_rebase_fn(RebaseFn fn) { rebase_fn_ = std::move(fn); }

  /// Queues a tenant whose delta chain crossed the rebase threshold.
  void schedule_rebase(const std::string& tenant);

  /// Runs one bounded quantum of work; returns true when anything was
  /// done (the owner keeps its poll timeout short while this is true).
  bool tick();

  /// Pending work estimate: queued rebases + segments awaiting rewrite.
  [[nodiscard]] std::uint64_t backlog() const;

  /// Abandons the in-flight plan (SIGTERM drain, migration freeze); the
  /// log sees no compaction writes until the next tick.
  void quiesce();

  [[nodiscard]] const CompactorStats& stats() const noexcept {
    return stats_;
  }

 private:
  [[nodiscard]] bool pick_segment();
  [[nodiscard]] bool run_rebase();

  TenantStore& store_;
  CompactorConfig config_;
  RebaseFn rebase_fn_;
  std::deque<std::string> rebase_queue_;
  std::set<std::string> rebase_queued_;  ///< dedup of rebase_queue_
  std::uint32_t target_segment_ = 0;     ///< 0 = no rewrite in flight
  /// Sealed segments with no live spans left to move (their remaining
  /// live bytes are bases/deltas, which only rebases can retire) — never
  /// worth re-picking, since sealed segments gain no new records.
  std::set<std::uint32_t> barren_;
  CompactorStats stats_;
};

}  // namespace ocep::store
