// Crash-consistent append-only segment log — the durability substrate
// under tenant state (src/store/tenant_store.h layers the semantics).
//
// On-disk layout, all little-endian:
//
//   <dir>/manifest       "OCEPMAN1" | u32 crc32c(body) | body
//                        body = varint segment count, each segment id
//                        ascending, varint next segment id
//   <dir>/seg-NNNNNNNN.log
//                        16-byte header: "OCEPSEG1" | u32 id | u32
//                        crc32c(id bytes), then records back to back:
//                        u32 body length | u32 crc32c(body) | body
//                        body = u8 type | varint epoch |
//                               varint name length | name | payload
//
// Write discipline (the crash contract):
//   - records are appended with plain write(2) and made durable by
//     sync() — the group-commit fsync the owner calls on its flush
//     interval, so loss after kill -9 is bounded by that interval;
//   - rotation creates + fsyncs the new segment file (and the directory)
//     BEFORE the manifest names it, then writes the manifest durably
//     (tmp + fsync + rename + dir fsync).  A crash between the steps
//     leaves only an empty orphan segment, removed at the next open;
//   - the manifest is the root of truth: a segment it names must exist
//     and parse (else StoreError), a segment file it does not name must
//     be empty (else StoreError — records never vanish silently).
//
// Recovery (open of a rw log) replays every record through the caller's
// scan callback.  A record that fails its length or CRC check in the
// *final* segment with nothing valid after it is a torn tail: the bytes
// are truncated and counted, never reported as an error.  The same
// failure anywhere else — mid-log, or with a valid record following —
// is corruption and throws a positioned StoreError.
//
// Thread model: one owner thread (each reactor shard owns its own log).
// The crash_hook fires before and after every write/fsync/rename so a
// test can kill the process (or snapshot the directory) at every edge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ocep::store {

enum class RecordType : std::uint8_t {
  kGenesis = 1,    ///< pattern list of a tenant that never announced traces
  kBase = 2,       ///< full OCEPNTC1 tenant image
  kDelta = 3,      ///< raw session wire bytes fed since the last append
  kTombstone = 4,  ///< tenant left this log (migrated away / superseded)
  kSpan = 5,       ///< evicted leaf-history span (store/tenant_store.h codec)
};

struct Record {
  RecordType type = RecordType::kDelta;
  std::uint64_t epoch = 0;  ///< disambiguates images across logs; higher wins
  std::string name;         ///< tenant name
  std::string payload;
};

/// Where an appended (or scanned) record lives; the index layer keeps
/// these so superseded records can be marked dead and re-read later.
struct RecordRef {
  std::uint32_t segment = 0;
  std::uint64_t offset = 0;       ///< frame start within the segment file
  std::uint64_t frame_bytes = 0;  ///< header + body
};

/// One manifest-listed segment and how many bytes of it are durable —
/// the unit a log tailer (net/replicator) reasons about.
struct SegmentView {
  std::uint32_t id = 0;
  std::uint64_t bytes = 0;  ///< durable size, including the 16-byte header
};

/// Per-segment occupancy for compaction policy: how much of a segment is
/// still live versus superseded.  `bytes` excludes the 16-byte header, so
/// a fully-dead segment reports live_bytes == 0 with bytes > 0.
struct SegmentUsage {
  std::uint32_t id = 0;
  std::uint64_t bytes = 0;       ///< durable frame bytes (header excluded)
  std::uint64_t live_bytes = 0;  ///< frame bytes of live records
  bool sealed = false;           ///< not the active (append) segment
};

/// Fault-injection edges (modeled on net::MigrationHook): the hook fires
/// with phase "pre" before and "post" after every durability-relevant
/// syscall, so a harness can abort or snapshot at every crash point.
enum class CrashEdge : std::uint8_t { kWrite, kSync, kRename };
using CrashHook =
    std::function<void(CrashEdge edge, std::string_view detail)>;

struct LogConfig {
  std::string dir;
  std::uint64_t segment_bytes = 4ULL << 20U;  ///< rotation threshold
  bool read_only = false;  ///< scan without truncating, deleting, appending
  CrashHook crash_hook;    ///< test-only; production leaves it unset
};

struct LogStats {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;        ///< live (not superseded) records
  std::uint64_t live_bytes = 0;     ///< frame bytes of live records
  std::uint64_t total_bytes = 0;    ///< frame bytes ever appended/scanned
  std::uint64_t torn_tail_bytes = 0;  ///< discarded at open
  std::uint64_t appends = 0;
  std::uint64_t syncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t segments_deleted = 0;  ///< fully-dead segments collected
};

class SegmentLog {
 public:
  using ScanCallback =
      std::function<void(const Record& record, const RecordRef& ref)>;

  /// Opens (creating if rw and absent) and replays the log; every stored
  /// record reaches `on_scan` in append order.  Throws StoreError on
  /// corruption that is not a torn tail.
  SegmentLog(LogConfig config, const ScanCallback& on_scan);
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Appends one record (rw only).  Durable only after the next sync();
  /// rotates to a fresh segment past the size threshold.
  RecordRef append(const Record& record);

  /// fdatasync of the active segment when dirty; the group commit.
  void sync();
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }

  /// Marks a record superseded.  A sealed segment whose live bytes reach
  /// zero is unlinked (after a durable manifest update that drops it).
  void mark_dead(const RecordRef& ref);

  /// Re-reads one record's payload from disk (CRC re-checked); used to
  /// reload a spilled tenant without keeping its image in RAM.
  [[nodiscard]] std::string read_payload(const RecordRef& ref) const;

  // --- tailing/reader API (net/replicator ships raw segment bytes) -----

  /// Manifest-order snapshot of every segment and its *synced* size.
  /// The active segment reports the offset of the last sync(), never
  /// bytes that could still be lost to a crash — a tailer that ships
  /// from this view can never put the follower ahead of the primary.
  [[nodiscard]] std::vector<SegmentView> segments() const;

  [[nodiscard]] std::uint32_t next_segment_id() const noexcept {
    return next_segment_id_;
  }

  /// Manifest-order occupancy snapshot for compaction policy (dead-byte
  /// ratio per sealed segment).  Same durable-size discipline as
  /// segments(): the active segment reports synced frame bytes only.
  [[nodiscard]] std::vector<SegmentUsage> segment_usage() const;

  /// Reads up to `max_bytes` raw file bytes of segment `id` starting at
  /// `offset` (pread; no CRC interpretation — frames ship verbatim).
  /// Returns fewer bytes at end of segment; empty at/past the end.
  /// Throws StoreError when the segment is unknown or unreadable.
  [[nodiscard]] std::string read_range(std::uint32_t id, std::uint64_t offset,
                                       std::uint64_t max_bytes) const;

  [[nodiscard]] const LogStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& dir() const noexcept {
    return config_.dir;
  }

 private:
  [[nodiscard]] std::string segment_path(std::uint32_t id) const;
  void write_manifest();
  void open_or_create();
  void scan_segment(std::uint32_t id, bool last, const ScanCallback& on_scan);
  void create_segment(std::uint32_t id);
  void rotate();
  void full_write(std::string_view bytes, const char* what);
  void hook(CrashEdge edge, const std::string& detail) const;

  LogConfig config_;
  std::vector<std::uint32_t> segment_ids_;  ///< manifest order (ascending)
  std::uint32_t next_segment_id_ = 1;
  int fd_ = -1;                    ///< active segment, O_APPEND (rw mode)
  std::uint64_t write_offset_ = 0; ///< size of the active segment
  std::uint64_t synced_offset_ = 0;  ///< active-segment size at last sync()
  bool dirty_ = false;
  std::map<std::uint32_t, std::uint64_t> live_bytes_;  ///< per segment
  LogStats stats_;
};

// --- shared frame/manifest encoding (tenant_store + verify reuse) ------

constexpr std::string_view kManifestMagic = "OCEPMAN1";
constexpr std::string_view kSegmentMagic = "OCEPSEG1";
constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::uint64_t kMaxRecordBytes = 1ULL << 30U;

/// Serializes the record body (type | epoch | name | payload).
[[nodiscard]] std::string encode_record_body(const Record& record);

/// Parses a record body; false on malformed input (bad type, short name).
[[nodiscard]] bool decode_record_body(std::string_view body, Record& out);

/// Attempts to parse one frame at `offset` of `data` (a whole segment
/// file in memory).  Returns the frame size (header + body) and fills
/// `out` on success; 0 when the bytes do not form a valid record.
[[nodiscard]] std::uint64_t try_parse_frame(std::string_view data,
                                            std::uint64_t offset, Record& out);

/// Encodes a whole manifest file (magic | crc | body) for `ids` in
/// ascending order with `next_id` as the successor id.  Replication
/// writes follower manifests through this so primary and follower
/// manifests are byte-identical for the same segment set.
[[nodiscard]] std::string encode_manifest_file(
    const std::vector<std::uint32_t>& ids, std::uint32_t next_id);

/// Parses a manifest file; false (with `error` set) on any corruption.
[[nodiscard]] bool decode_manifest_file(std::string_view file,
                                        std::vector<std::uint32_t>& ids,
                                        std::uint32_t& next_id,
                                        std::string& error);

/// The 16-byte segment file header for `id`.
[[nodiscard]] std::string encode_segment_header_bytes(std::uint32_t id);

/// seg-NNNNNNNN.log -> id, or 0 when the name does not match the scheme.
[[nodiscard]] std::uint32_t parse_segment_file_name(const std::string& name);

// --- tolerant offline verification (ocep_inspect --store) --------------

struct VerifyIssue {
  std::string file;
  std::int64_t offset = -1;
  std::string message;
  bool fatal = false;  ///< torn tails and orphan files are non-fatal
};

struct TenantCounts {
  std::uint64_t genesis = 0;
  std::uint64_t bases = 0;
  std::uint64_t deltas = 0;
  std::uint64_t tombstones = 0;
  std::uint64_t spans = 0;       ///< spilled leaf-history span records
  std::uint64_t bytes = 0;       ///< payload bytes across all records
  std::uint64_t last_epoch = 0;  ///< highest epoch seen
};

struct VerifyReport {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  std::uint64_t record_bytes = 0;
  std::uint64_t torn_tail_bytes = 0;
  std::map<std::string, TenantCounts> tenants;
  std::vector<VerifyIssue> issues;
  [[nodiscard]] bool ok() const {
    for (const VerifyIssue& issue : issues) {
      if (issue.fatal) {
        return false;
      }
    }
    return true;
  }
};

/// Read-only scan that never throws: every CRC failure, missing segment,
/// and torn tail lands in the report with its file + offset.
[[nodiscard]] VerifyReport verify_log(const std::string& dir);

}  // namespace ocep::store
