#include "store/tenant_store.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "poet/varint.h"

namespace ocep::store {

std::string encode_patterns(const std::vector<std::string>& patterns) {
  std::ostringstream out;
  poet::put_varint(out, patterns.size());
  for (const std::string& pattern : patterns) {
    poet::put_string(out, pattern);
  }
  return std::move(out).str();
}

bool decode_patterns(std::string_view payload,
                     std::vector<std::string>& out) {
  try {
    std::istringstream in{std::string(payload)};
    const std::uint64_t count = poet::get_varint(in);
    if (count > 4096) {
      return false;
    }
    out.clear();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(poet::get_string(in));
    }
    return in.peek() == std::char_traits<char>::eof();
  } catch (const Error&) {
    return false;
  }
}

std::string encode_span_payload(const SpanPayload& span) {
  std::ostringstream out;
  poet::put_varint(out, span.key.pattern);
  poet::put_varint(out, span.key.leaf);
  poet::put_varint(out, span.key.trace);
  poet::put_varint(out, span.key.seq);
  poet::put_varint(out, span.entries.size());
  std::uint64_t prev = 0;
  for (const auto& [index, comm] : span.entries) {
    poet::put_varint(out, index - prev);  // ascending, so deltas fit small
    poet::put_varint(out, comm);
    prev = index;
  }
  return std::move(out).str();
}

namespace {

constexpr std::uint64_t kMaxSpanEntries = 1ULL << 28U;

bool decode_span_impl(std::string_view payload, SpanKey& key,
                      SpanPayload* full) {
  try {
    std::istringstream in{std::string(payload)};
    key.pattern = static_cast<std::uint32_t>(poet::get_varint(in));
    key.leaf = static_cast<std::uint32_t>(poet::get_varint(in));
    key.trace = poet::get_varint(in);
    key.seq = poet::get_varint(in);
    if (full == nullptr) {
      return true;
    }
    const std::uint64_t count = poet::get_varint(in);
    if (count > kMaxSpanEntries) {
      return false;
    }
    full->entries.clear();
    full->entries.reserve(count);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t delta = poet::get_varint(in);
      const std::uint64_t comm = poet::get_varint(in);
      const std::uint64_t index = prev + delta;
      if (i != 0 && delta == 0) {
        return false;  // indices must be strictly ascending
      }
      full->entries.emplace_back(index, comm);
      prev = index;
    }
    return in.peek() == std::char_traits<char>::eof();
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

bool decode_span_payload(std::string_view payload, SpanPayload& out) {
  return decode_span_impl(payload, out.key, &out);
}

bool decode_span_key(std::string_view payload, SpanKey& out) {
  return decode_span_impl(payload, out, nullptr);
}

TenantStore::TenantStore(LogConfig config) {
  // on_scan runs inside the SegmentLog constructor, so dead-record marks
  // are deferred until the log is fully replayed (compaction mid-scan
  // would pull segments out from under the scanner).
  log_ = std::make_unique<SegmentLog>(
      std::move(config),
      [this](const Record& record, const RecordRef& ref) {
        on_scan(record, ref);
      });
  scanning_ = false;
  for (const RecordRef& ref : deferred_dead_) {
    log_->mark_dead(ref);
  }
  deferred_dead_.clear();
}

void TenantStore::kill_ref(const RecordRef& ref) {
  if (scanning_) {
    deferred_dead_.push_back(ref);
  } else {
    log_->mark_dead(ref);
  }
}

void TenantStore::kill_entry_records(Entry& entry) {
  if (entry.has_base || entry.has_genesis) {
    kill_ref(entry.base_ref);
  }
  for (const RecordRef& ref : entry.delta_refs) {
    kill_ref(ref);
  }
  entry = Entry{};
}

void TenantStore::kill_tenant_spans(const std::string& name) {
  const auto it = spans_.find(name);
  if (it == spans_.end()) {
    return;
  }
  for (const auto& [key, ref] : it->second) {
    kill_ref(ref);
  }
  spans_.erase(it);
}

void TenantStore::retire_tombstone(const std::string& name,
                                   std::uint64_t epoch) {
  const auto it = tombstones_.find(name);
  if (it != tombstones_.end() && epoch > it->second.epoch) {
    kill_ref(it->second.ref);
    tombstones_.erase(it);
  }
}

void TenantStore::on_scan(const Record& record, const RecordRef& ref) {
  const auto it = entries_.find(record.name);
  switch (record.type) {
    case RecordType::kGenesis: {
      if (it != entries_.end() && record.epoch < it->second.epoch) {
        kill_ref(ref);  // stale copy outranked by a later image
        return;
      }
      std::vector<std::string> patterns;
      if (!decode_patterns(record.payload, patterns)) {
        kill_ref(ref);
        return;
      }
      if (it != entries_.end()) {
        kill_entry_records(it->second);
      }
      kill_tenant_spans(record.name);  // genesis = a tenant with no history
      Entry& entry = entries_[record.name];
      entry.epoch = record.epoch;
      entry.has_genesis = true;
      entry.base_ref = ref;
      TenantImage& image = images_[record.name];
      image = TenantImage{};
      image.epoch = record.epoch;
      image.patterns = std::move(patterns);
      retire_tombstone(record.name, record.epoch);
      return;
    }
    case RecordType::kBase: {
      if (it != entries_.end() && record.epoch < it->second.epoch) {
        kill_ref(ref);
        return;
      }
      if (it != entries_.end()) {
        kill_entry_records(it->second);
      }
      Entry& entry = entries_[record.name];
      entry.epoch = record.epoch;
      entry.has_base = true;
      entry.base_ref = ref;
      TenantImage& image = images_[record.name];
      image = TenantImage{};
      image.epoch = record.epoch;
      image.has_base = true;
      image.base = record.payload;
      retire_tombstone(record.name, record.epoch);
      return;
    }
    case RecordType::kDelta: {
      if (it == entries_.end() || record.epoch != it->second.epoch) {
        stats_.orphan_deltas += 1;  // its base was superseded or collected
        kill_ref(ref);
        return;
      }
      it->second.delta_refs.push_back(ref);
      images_[record.name].deltas.push_back(record.payload);
      return;
    }
    case RecordType::kTombstone: {
      if (it == entries_.end() || record.epoch < it->second.epoch) {
        kill_ref(ref);  // nothing left here for it to guard
        return;
      }
      kill_entry_records(it->second);
      kill_tenant_spans(record.name);
      entries_.erase(it);
      images_.erase(record.name);
      tombstones_[record.name] = Tombstone{ref, record.epoch};
      return;
    }
    case RecordType::kSpan: {
      SpanKey key;
      if (it == entries_.end() || !decode_span_key(record.payload, key)) {
        stats_.orphan_spans += 1;  // its incarnation left, or malformed
        kill_ref(ref);
        return;
      }
      auto& per_tenant = spans_[record.name];
      if (const auto old = per_tenant.find(key); old != per_tenant.end()) {
        kill_ref(old->second);  // replay re-spill: last copy wins
      }
      per_tenant[key] = ref;
      return;
    }
  }
}

void TenantStore::drop_images() {
  images_.clear();
  images_dropped_ = true;
}

TenantImage TenantStore::read_tenant(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw StoreError("tenant has no stored image: " + name, log_->dir(), -1);
  }
  const Entry& entry = it->second;
  TenantImage image;
  image.epoch = entry.epoch;
  if (entry.has_base) {
    image.has_base = true;
    image.base = log_->read_payload(entry.base_ref);
  } else if (entry.has_genesis) {
    if (!decode_patterns(log_->read_payload(entry.base_ref),
                         image.patterns)) {
      throw StoreError("stored genesis payload is malformed: " + name,
                       log_->dir(), -1);
    }
  }
  image.deltas.reserve(entry.delta_refs.size());
  for (const RecordRef& ref : entry.delta_refs) {
    image.deltas.push_back(log_->read_payload(ref));
  }
  return image;
}

std::uint64_t TenantStore::epoch_of(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.epoch;
}

bool TenantStore::has_base(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.has_base;
}

std::uint64_t TenantStore::next_epoch(const std::string& name) const {
  std::uint64_t epoch = 1;
  if (const auto it = entries_.find(name); it != entries_.end()) {
    epoch = it->second.epoch + 1;
  }
  if (const auto it = tombstones_.find(name); it != tombstones_.end()) {
    epoch = std::max(epoch, it->second.epoch + 1);
  }
  return epoch;
}

void TenantStore::append_genesis(const std::string& name,
                                 const std::vector<std::string>& patterns,
                                 std::uint64_t min_epoch) {
  const std::uint64_t epoch = std::max(next_epoch(name), min_epoch);
  Record record;
  record.type = RecordType::kGenesis;
  record.epoch = epoch;
  record.name = name;
  record.payload = encode_patterns(patterns);
  const RecordRef ref = log_->append(record);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    kill_entry_records(it->second);
  }
  kill_tenant_spans(name);
  Entry& entry = entries_[name];
  entry.epoch = epoch;
  entry.has_genesis = true;
  entry.base_ref = ref;
  retire_tombstone(name, epoch);
  stats_.genesis_appends += 1;
}

void TenantStore::append_delta(const std::string& name,
                               std::string_view bytes) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw StoreError("delta append for a tenant with no base/genesis: " +
                         name,
                     log_->dir(), -1);
  }
  Record record;
  record.type = RecordType::kDelta;
  record.epoch = it->second.epoch;
  record.name = name;
  record.payload = std::string(bytes);
  it->second.delta_refs.push_back(log_->append(record));
  stats_.delta_appends += 1;
  stats_.delta_bytes += bytes.size();
}

void TenantStore::append_base(const std::string& name, std::string_view blob,
                              std::uint64_t min_epoch) {
  const std::uint64_t epoch = std::max(next_epoch(name), min_epoch);
  Record record;
  record.type = RecordType::kBase;
  record.epoch = epoch;
  record.name = name;
  record.payload = std::string(blob);
  const RecordRef ref = log_->append(record);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    kill_entry_records(it->second);
  }
  Entry& entry = entries_[name];
  entry.epoch = epoch;
  entry.has_base = true;
  entry.base_ref = ref;
  retire_tombstone(name, epoch);
  stats_.base_appends += 1;
}

void TenantStore::append_tombstone(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;  // nothing stored here to disown
  }
  const std::uint64_t epoch = it->second.epoch + 1;
  Record record;
  record.type = RecordType::kTombstone;
  record.epoch = epoch;
  record.name = name;
  const RecordRef ref = log_->append(record);
  kill_entry_records(it->second);
  kill_tenant_spans(name);
  entries_.erase(it);
  if (!images_dropped_) {
    images_.erase(name);
  }
  tombstones_[name] = Tombstone{ref, epoch};
  stats_.tombstone_appends += 1;
}

RecordRef TenantStore::append_span(const std::string& name,
                                   const SpanPayload& span) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw StoreError("span append for a tenant with no base/genesis: " +
                         name,
                     log_->dir(), -1);
  }
  Record record;
  record.type = RecordType::kSpan;
  record.epoch = it->second.epoch;
  record.name = name;
  record.payload = encode_span_payload(span);
  const RecordRef ref = log_->append(record);
  auto& per_tenant = spans_[name];
  if (const auto old = per_tenant.find(span.key); old != per_tenant.end()) {
    kill_ref(old->second);
  }
  per_tenant[span.key] = ref;
  stats_.span_appends += 1;
  stats_.span_bytes += record.payload.size();
  return ref;
}

bool TenantStore::has_span(const std::string& name,
                           const SpanKey& key) const {
  const auto it = spans_.find(name);
  return it != spans_.end() && it->second.contains(key);
}

SpanPayload TenantStore::read_span(const std::string& name,
                                   const SpanKey& key) const {
  const auto it = spans_.find(name);
  if (it == spans_.end() || !it->second.contains(key)) {
    throw StoreError("tenant has no stored span: " + name, log_->dir(), -1);
  }
  SpanPayload span;
  if (!decode_span_payload(log_->read_payload(it->second.at(key)), span)) {
    throw StoreError("stored span payload is malformed: " + name,
                     log_->dir(), -1);
  }
  return span;
}

void TenantStore::release_span(const std::string& name, const SpanKey& key) {
  const auto it = spans_.find(name);
  if (it == spans_.end()) {
    return;
  }
  const auto sit = it->second.find(key);
  if (sit == it->second.end()) {
    return;
  }
  kill_ref(sit->second);
  it->second.erase(sit);
  if (it->second.empty()) {
    spans_.erase(it);
  }
  stats_.span_releases += 1;
}

void TenantStore::retain_spans(const std::string& name,
                               const std::vector<SpanKey>& live) {
  const auto it = spans_.find(name);
  if (it == spans_.end()) {
    return;
  }
  const std::set<SpanKey> keep(live.begin(), live.end());
  for (auto sit = it->second.begin(); sit != it->second.end();) {
    if (keep.contains(sit->first)) {
      ++sit;
    } else {
      kill_ref(sit->second);
      sit = it->second.erase(sit);
      stats_.span_releases += 1;
    }
  }
  if (it->second.empty()) {
    spans_.erase(it);
  }
}

std::uint64_t TenantStore::span_count(const std::string& name) const {
  const auto it = spans_.find(name);
  return it == spans_.end() ? 0 : it->second.size();
}

std::uint64_t TenantStore::total_spans() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, per_tenant] : spans_) {
    total += per_tenant.size();
  }
  return total;
}

std::vector<std::pair<std::string, SpanKey>> TenantStore::spans_in_segment(
    std::uint32_t segment, std::size_t max) const {
  std::vector<std::pair<std::string, SpanKey>> found;
  std::vector<std::uint64_t> offsets;
  for (const auto& [name, per_tenant] : spans_) {
    for (const auto& [key, ref] : per_tenant) {
      if (ref.segment == segment) {
        found.emplace_back(name, key);
        offsets.push_back(ref.offset);
      }
    }
  }
  std::vector<std::size_t> order(found.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&offsets](std::size_t a,
                                                   std::size_t b) {
    return offsets[a] < offsets[b];
  });
  std::vector<std::pair<std::string, SpanKey>> out;
  out.reserve(std::min(max, order.size()));
  for (const std::size_t i : order) {
    if (out.size() == max) {
      break;
    }
    out.push_back(std::move(found[i]));
  }
  return out;
}

void TenantStore::relocate_span(const std::string& name, const SpanKey& key) {
  const auto it = spans_.find(name);
  if (it == spans_.end()) {
    return;
  }
  const auto sit = it->second.find(key);
  if (sit == it->second.end()) {
    return;
  }
  const auto eit = entries_.find(name);
  Record record;
  record.type = RecordType::kSpan;
  record.epoch = eit == entries_.end() ? 0 : eit->second.epoch;
  record.name = name;
  record.payload = log_->read_payload(sit->second);
  const RecordRef moved = log_->append(record);
  kill_ref(sit->second);
  sit->second = moved;
  stats_.spans_relocated += 1;
}

std::map<std::string, TenantImage> TenantStore::read_images(
    const std::string& dir) {
  LogConfig config;
  config.dir = dir;
  config.read_only = true;
  TenantStore store(std::move(config));
  return std::move(store.images_);
}

}  // namespace ocep::store
