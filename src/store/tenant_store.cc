#include "store/tenant_store.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "poet/varint.h"

namespace ocep::store {

std::string encode_patterns(const std::vector<std::string>& patterns) {
  std::ostringstream out;
  poet::put_varint(out, patterns.size());
  for (const std::string& pattern : patterns) {
    poet::put_string(out, pattern);
  }
  return std::move(out).str();
}

bool decode_patterns(std::string_view payload,
                     std::vector<std::string>& out) {
  try {
    std::istringstream in{std::string(payload)};
    const std::uint64_t count = poet::get_varint(in);
    if (count > 4096) {
      return false;
    }
    out.clear();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(poet::get_string(in));
    }
    return in.peek() == std::char_traits<char>::eof();
  } catch (const Error&) {
    return false;
  }
}

TenantStore::TenantStore(LogConfig config) {
  // on_scan runs inside the SegmentLog constructor, so dead-record marks
  // are deferred until the log is fully replayed (compaction mid-scan
  // would pull segments out from under the scanner).
  log_ = std::make_unique<SegmentLog>(
      std::move(config),
      [this](const Record& record, const RecordRef& ref) {
        on_scan(record, ref);
      });
  scanning_ = false;
  for (const RecordRef& ref : deferred_dead_) {
    log_->mark_dead(ref);
  }
  deferred_dead_.clear();
}

void TenantStore::kill_ref(const RecordRef& ref) {
  if (scanning_) {
    deferred_dead_.push_back(ref);
  } else {
    log_->mark_dead(ref);
  }
}

void TenantStore::kill_entry_records(Entry& entry) {
  if (entry.has_base || entry.has_genesis) {
    kill_ref(entry.base_ref);
  }
  for (const RecordRef& ref : entry.delta_refs) {
    kill_ref(ref);
  }
  entry = Entry{};
}

void TenantStore::retire_tombstone(const std::string& name,
                                   std::uint64_t epoch) {
  const auto it = tombstones_.find(name);
  if (it != tombstones_.end() && epoch > it->second.epoch) {
    kill_ref(it->second.ref);
    tombstones_.erase(it);
  }
}

void TenantStore::on_scan(const Record& record, const RecordRef& ref) {
  const auto it = entries_.find(record.name);
  switch (record.type) {
    case RecordType::kGenesis: {
      if (it != entries_.end() && record.epoch < it->second.epoch) {
        kill_ref(ref);  // stale copy outranked by a later image
        return;
      }
      std::vector<std::string> patterns;
      if (!decode_patterns(record.payload, patterns)) {
        kill_ref(ref);
        return;
      }
      if (it != entries_.end()) {
        kill_entry_records(it->second);
      }
      Entry& entry = entries_[record.name];
      entry.epoch = record.epoch;
      entry.has_genesis = true;
      entry.base_ref = ref;
      TenantImage& image = images_[record.name];
      image = TenantImage{};
      image.epoch = record.epoch;
      image.patterns = std::move(patterns);
      retire_tombstone(record.name, record.epoch);
      return;
    }
    case RecordType::kBase: {
      if (it != entries_.end() && record.epoch < it->second.epoch) {
        kill_ref(ref);
        return;
      }
      if (it != entries_.end()) {
        kill_entry_records(it->second);
      }
      Entry& entry = entries_[record.name];
      entry.epoch = record.epoch;
      entry.has_base = true;
      entry.base_ref = ref;
      TenantImage& image = images_[record.name];
      image = TenantImage{};
      image.epoch = record.epoch;
      image.has_base = true;
      image.base = record.payload;
      retire_tombstone(record.name, record.epoch);
      return;
    }
    case RecordType::kDelta: {
      if (it == entries_.end() || record.epoch != it->second.epoch) {
        stats_.orphan_deltas += 1;  // its base was superseded or collected
        kill_ref(ref);
        return;
      }
      it->second.delta_refs.push_back(ref);
      images_[record.name].deltas.push_back(record.payload);
      return;
    }
    case RecordType::kTombstone: {
      if (it == entries_.end() || record.epoch < it->second.epoch) {
        kill_ref(ref);  // nothing left here for it to guard
        return;
      }
      kill_entry_records(it->second);
      entries_.erase(it);
      images_.erase(record.name);
      tombstones_[record.name] = Tombstone{ref, record.epoch};
      return;
    }
  }
}

void TenantStore::drop_images() {
  images_.clear();
  images_dropped_ = true;
}

TenantImage TenantStore::read_tenant(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw StoreError("tenant has no stored image: " + name, log_->dir(), -1);
  }
  const Entry& entry = it->second;
  TenantImage image;
  image.epoch = entry.epoch;
  if (entry.has_base) {
    image.has_base = true;
    image.base = log_->read_payload(entry.base_ref);
  } else if (entry.has_genesis) {
    if (!decode_patterns(log_->read_payload(entry.base_ref),
                         image.patterns)) {
      throw StoreError("stored genesis payload is malformed: " + name,
                       log_->dir(), -1);
    }
  }
  image.deltas.reserve(entry.delta_refs.size());
  for (const RecordRef& ref : entry.delta_refs) {
    image.deltas.push_back(log_->read_payload(ref));
  }
  return image;
}

std::uint64_t TenantStore::epoch_of(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.epoch;
}

bool TenantStore::has_base(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.has_base;
}

std::uint64_t TenantStore::next_epoch(const std::string& name) const {
  std::uint64_t epoch = 1;
  if (const auto it = entries_.find(name); it != entries_.end()) {
    epoch = it->second.epoch + 1;
  }
  if (const auto it = tombstones_.find(name); it != tombstones_.end()) {
    epoch = std::max(epoch, it->second.epoch + 1);
  }
  return epoch;
}

void TenantStore::append_genesis(const std::string& name,
                                 const std::vector<std::string>& patterns,
                                 std::uint64_t min_epoch) {
  const std::uint64_t epoch = std::max(next_epoch(name), min_epoch);
  Record record;
  record.type = RecordType::kGenesis;
  record.epoch = epoch;
  record.name = name;
  record.payload = encode_patterns(patterns);
  const RecordRef ref = log_->append(record);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    kill_entry_records(it->second);
  }
  Entry& entry = entries_[name];
  entry.epoch = epoch;
  entry.has_genesis = true;
  entry.base_ref = ref;
  retire_tombstone(name, epoch);
  stats_.genesis_appends += 1;
}

void TenantStore::append_delta(const std::string& name,
                               std::string_view bytes) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw StoreError("delta append for a tenant with no base/genesis: " +
                         name,
                     log_->dir(), -1);
  }
  Record record;
  record.type = RecordType::kDelta;
  record.epoch = it->second.epoch;
  record.name = name;
  record.payload = std::string(bytes);
  it->second.delta_refs.push_back(log_->append(record));
  stats_.delta_appends += 1;
  stats_.delta_bytes += bytes.size();
}

void TenantStore::append_base(const std::string& name, std::string_view blob,
                              std::uint64_t min_epoch) {
  const std::uint64_t epoch = std::max(next_epoch(name), min_epoch);
  Record record;
  record.type = RecordType::kBase;
  record.epoch = epoch;
  record.name = name;
  record.payload = std::string(blob);
  const RecordRef ref = log_->append(record);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    kill_entry_records(it->second);
  }
  Entry& entry = entries_[name];
  entry.epoch = epoch;
  entry.has_base = true;
  entry.base_ref = ref;
  retire_tombstone(name, epoch);
  stats_.base_appends += 1;
}

void TenantStore::append_tombstone(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;  // nothing stored here to disown
  }
  const std::uint64_t epoch = it->second.epoch + 1;
  Record record;
  record.type = RecordType::kTombstone;
  record.epoch = epoch;
  record.name = name;
  const RecordRef ref = log_->append(record);
  kill_entry_records(it->second);
  entries_.erase(it);
  if (!images_dropped_) {
    images_.erase(name);
  }
  tombstones_[name] = Tombstone{ref, epoch};
  stats_.tombstone_appends += 1;
}

std::map<std::string, TenantImage> TenantStore::read_images(
    const std::string& dir) {
  LogConfig config;
  config.dir = dir;
  config.read_only = true;
  TenantStore store(std::move(config));
  return std::move(store.images_);
}

}  // namespace ocep::store
