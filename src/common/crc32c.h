// CRC-32C (Castagnoli) over byte ranges.
//
// The session layer (poet/session.h) protects every frame with a CRC so a
// flipped bit on a lossy channel is detected per frame instead of
// desynchronizing the whole stream, and the checkpoint format seals its
// payload the same way.  Table-driven, one byte per step; the table is
// computed at compile time.  Chaining: pass the previous result as `seed`
// to extend a checksum over multiple fragments.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ocep {
namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0x82f63b78U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// CRC-32C of `data`, continuing from `seed` (0 for a fresh checksum).
[[nodiscard]] inline std::uint32_t crc32c(std::string_view data,
                                          std::uint32_t seed = 0) noexcept {
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = detail::kCrc32cTable[(crc ^ static_cast<unsigned char>(c)) & 0xffU] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace ocep
