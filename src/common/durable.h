// Durable small-file replacement: the tmp + fsync + rename + dir-fsync
// dance POSIX requires before a file update can be called crash-safe.
//
// Plain tmp+rename (what placement.map and the .ckp writers used before
// PR 8) survives a crash *between* the two steps, but not a power cut
// after the rename: without an fsync of the data the renamed file can be
// an empty or partial shell, and without an fsync of the directory the
// rename itself may never reach disk — losing both the old and the new
// copy.  write_file_durable() closes every window:
//
//   1. write bytes to  <path>.tmp
//   2. fsync(<path>.tmp)           — data hits disk before it is named
//   3. rename(<path>.tmp, <path>)  — atomic swap, old copy intact until now
//   4. fsync(parent directory)     — the swap itself hits disk
//
// Helpers return false instead of throwing (callers count an error and
// carry on — losing a checkpoint write must never take the daemon down)
// and are cheap enough for metadata-sized files; bulk data belongs in the
// append-only store (src/store), which amortizes its fsyncs.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <string>
#include <string_view>

namespace ocep {

/// fsync(2) on a path opened read-only; works for directories too (the
/// only portable way to flush a rename).  False on open/fsync failure.
inline bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// fsync the directory containing `path` (flushes a rename of `path`).
inline bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return fsync_path(dir);
}

/// Replaces `path` with `bytes`, durably (see the file comment for the
/// exact sequence).  False on any failure; the tmp file is removed and
/// the old `path` (if any) is left untouched.
inline bool write_file_durable(const std::string& path,
                               std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  std::size_t written = 0;
  bool ok = true;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return fsync_parent_dir(path);
}

}  // namespace ocep
