// String interning.
//
// Event attributes (type and text fields) repeat heavily across a
// million-event run; the store and the matcher only ever compare them for
// equality.  Interning turns every attribute into a 32-bit symbol so events
// stay small and comparisons are single integer compares.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ocep {

/// Interned string handle.  Symbol 0 is always the empty string, which the
/// pattern language treats as a wild-card attribute.
enum class Symbol : std::uint32_t {};

inline constexpr Symbol kEmptySymbol{0};

/// Append-only interning table.  Not thread-safe; each monitor owns one.
class StringPool {
 public:
  StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Returns the symbol for `s`, interning it on first sight.
  Symbol intern(std::string_view s);

  /// Returns the symbol for `s` if already interned, kEmptySymbol-distinct
  /// sentinel otherwise.  Used by matchers so that a pattern attribute that
  /// was never seen in any event cannot spuriously equal one.
  [[nodiscard]] bool lookup(std::string_view s, Symbol& out) const;

  /// The string for a previously returned symbol.
  [[nodiscard]] std::string_view view(Symbol sym) const;

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }

 private:
  // Deque keeps element addresses stable as the pool grows, so the
  // string_view keys in index_ remain valid (vector reallocation would move
  // short-string-optimized buffers).
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace ocep
