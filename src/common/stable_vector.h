// Append-only vector with stable element addresses and a single-writer /
// many-reader publication contract.
//
// Storage is chunked (geometrically growing chunks reached through a small
// inline directory), so push_back never moves an element: a reference
// obtained from operator[] stays valid for the container's lifetime.  That
// is what lets the matching pipeline's worker threads read the event store
// while the delivery thread keeps appending.
//
// Publication contract: exactly one thread calls push_back(); every
// push_back release-stores the new size into an atomic *visible size*.  A
// reader thread that acquire-loads visible_size() may access any index
// below the loaded value — the release/acquire pair orders the element
// (and chunk-directory) writes before the reads, so no locking is needed.
// size() is the writer's own view and must not be called concurrently
// with push_back by other threads; readers use visible_size().
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>

#include "common/assert.h"

namespace ocep {

/// `kFirstChunkLog2` sets the first chunk's capacity (2^k elements); each
/// subsequent chunk doubles, so the directory stays tiny while small
/// instances (e.g. sparse timestamp columns) don't over-allocate.
template <typename T, unsigned kFirstChunkLog2 = 9>
class StableVector {
  static_assert(kFirstChunkLog2 < 32, "first chunk must be addressable");
  /// Enough chunks that cumulative capacity exceeds 2^32 elements.
  static constexpr std::size_t kChunks = 33U - kFirstChunkLog2;
  static constexpr std::size_t kFirst = std::size_t{1} << kFirstChunkLog2;

 public:
  StableVector() = default;

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  /// Moves are writer-side operations: they must not race with any reader
  /// of the moved-from container.
  StableVector(StableVector&& other) noexcept { steal(other); }
  StableVector& operator=(StableVector&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  ~StableVector() { destroy(); }

  /// Writer only.  Publishes the element before returning.
  void push_back(const T& value) {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(size_, chunk, offset);
    if (chunks_[chunk] == nullptr) {
      chunks_[chunk] = new T[kFirst << chunk]();
    }
    chunks_[chunk][offset] = value;
    ++size_;
    visible_.store(size_, std::memory_order_release);
  }

  /// Valid for the writer at any index < size(), and for readers at any
  /// index below an acquire-loaded visible_size().
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(i, chunk, offset);
    return chunks_[chunk][offset];
  }

  /// Writer's view of the size.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reader-safe size: every index below the returned value is readable.
  [[nodiscard]] std::size_t visible_size() const noexcept {
    return visible_.load(std::memory_order_acquire);
  }

  /// Allocated capacity in elements (writer only; for memory accounting).
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (std::size_t c = 0; c < kChunks; ++c) {
      if (chunks_[c] != nullptr) {
        total += kFirst << c;
      }
    }
    return total;
  }

 private:
  static void locate(std::size_t i, std::size_t& chunk,
                     std::size_t& offset) noexcept {
    // Chunk c holds indices [kFirst*(2^c - 1), kFirst*(2^(c+1) - 1)).
    const std::size_t block = (i >> kFirstChunkLog2) + 1;
    chunk = static_cast<std::size_t>(std::bit_width(block)) - 1;
    offset = i - (kFirst * ((std::size_t{1} << chunk) - 1));
    OCEP_ASSERT(chunk < kChunks);
  }

  void steal(StableVector& other) noexcept {
    for (std::size_t c = 0; c < kChunks; ++c) {
      chunks_[c] = other.chunks_[c];
      other.chunks_[c] = nullptr;
    }
    size_ = other.size_;
    other.size_ = 0;
    visible_.store(size_, std::memory_order_relaxed);
    other.visible_.store(0, std::memory_order_relaxed);
  }

  void destroy() noexcept {
    for (std::size_t c = 0; c < kChunks; ++c) {
      delete[] chunks_[c];
      chunks_[c] = nullptr;
    }
  }

  T* chunks_[kChunks] = {};
  std::size_t size_ = 0;
  std::atomic<std::size_t> visible_{0};
};

}  // namespace ocep
