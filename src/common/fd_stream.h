// Minimal iostream adapters over POSIX file descriptors, used to run the
// wire protocol across pipes and sockets (the POET server/client link).
#pragma once

#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <vector>

#include "common/assert.h"

namespace ocep {

/// Output streambuf writing to a file descriptor (not owned).
class FdOutBuf final : public std::streambuf {
 public:
  explicit FdOutBuf(int fd, std::size_t buffer_size = 8192)
      : fd_(fd), buffer_(buffer_size) {
    setp(buffer_.data(), buffer_.data() + buffer_.size());
  }
  ~FdOutBuf() override { sync(); }

  FdOutBuf(const FdOutBuf&) = delete;
  FdOutBuf& operator=(const FdOutBuf&) = delete;

 protected:
  int overflow(int_type ch) override {
    if (sync() != 0) {
      return traits_type::eof();
    }
    if (ch != traits_type::eof()) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return ch;
  }

  int sync() override {
    const char* at = pbase();
    while (at < pptr()) {
      const ssize_t wrote =
          ::write(fd_, at, static_cast<std::size_t>(pptr() - at));
      if (wrote < 0) {
        return -1;
      }
      at += wrote;
    }
    setp(buffer_.data(), buffer_.data() + buffer_.size());
    return 0;
  }

 private:
  int fd_;
  std::vector<char> buffer_;
};

/// Input streambuf reading from a file descriptor (not owned).
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd, std::size_t buffer_size = 8192)
      : fd_(fd), buffer_(buffer_size) {
    setg(buffer_.data(), buffer_.data(), buffer_.data());
  }

  FdInBuf(const FdInBuf&) = delete;
  FdInBuf& operator=(const FdInBuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    const ssize_t got = ::read(fd_, buffer_.data(), buffer_.size());
    if (got <= 0) {
      return traits_type::eof();
    }
    setg(buffer_.data(), buffer_.data(),
         buffer_.data() + static_cast<std::size_t>(got));
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  std::vector<char> buffer_;
};

/// Convenience owners pairing a buf with its stream.
class FdOStream {
 public:
  explicit FdOStream(int fd) : buf_(fd), stream_(&buf_) {}
  std::ostream& get() noexcept { return stream_; }

 private:
  FdOutBuf buf_;
  std::ostream stream_;
};

class FdIStream {
 public:
  explicit FdIStream(int fd) : buf_(fd), stream_(&buf_) {}
  std::istream& get() noexcept { return stream_; }

 private:
  FdInBuf buf_;
  std::istream stream_;
};

}  // namespace ocep
