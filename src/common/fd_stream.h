// Minimal iostream adapters over POSIX file descriptors, used to run the
// wire protocol across pipes and sockets (the POET server/client link and
// the ocep_served loopback tools).
//
// Socket-hardened: short writes loop from the first *unwritten* byte,
// EINTR retries, and EAGAIN waits for readiness, so a partial write never
// resends bytes the kernel already accepted (resent bytes would corrupt
// the framing downstream).  On a hard error the unwritten remainder is
// compacted to the buffer front before sync() reports failure, which
// keeps a caller-driven retry exact.  EOF and error are distinguished
// (eof()/error()), and offset() counts bytes actually transferred so
// failures can be reported positioned.
#pragma once

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <vector>

#include "common/assert.h"

namespace ocep {

/// Output streambuf writing to a file descriptor (not owned).
class FdOutBuf final : public std::streambuf {
 public:
  explicit FdOutBuf(int fd, std::size_t buffer_size = 8192)
      : fd_(fd), buffer_(buffer_size) {
    setp(buffer_.data(), buffer_.data() + buffer_.size());
  }
  ~FdOutBuf() override { sync(); }

  FdOutBuf(const FdOutBuf&) = delete;
  FdOutBuf& operator=(const FdOutBuf&) = delete;

  /// True when the last sync() failed; last_errno() says why.
  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] int last_errno() const noexcept { return errno_; }
  /// Bytes successfully handed to the kernel since construction.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 protected:
  int_type overflow(int_type ch) override {
    if (sync() != 0) {
      return traits_type::eof();
    }
    if (ch != traits_type::eof()) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return ch;
  }

  int sync() override {
    error_ = false;
    const char* at = pbase();
    while (at < pptr()) {
      const ssize_t wrote =
          ::write(fd_, at, static_cast<std::size_t>(pptr() - at));
      if (wrote < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Mirror blocking-write semantics on a non-blocking fd.
          pollfd pfd{fd_, POLLOUT, 0};
          if (::poll(&pfd, 1, -1) >= 0 || errno == EINTR) {
            continue;
          }
        }
        error_ = true;
        errno_ = errno;
        // Compact the unwritten suffix to the buffer front: a retry after
        // the caller clears the stream state resumes at exactly the first
        // unwritten byte instead of resending [pbase, at).
        const std::size_t rest = static_cast<std::size_t>(pptr() - at);
        std::memmove(buffer_.data(), at, rest);
        setp(buffer_.data(), buffer_.data() + buffer_.size());
        pbump(static_cast<int>(rest));
        return -1;
      }
      offset_ += static_cast<std::uint64_t>(wrote);
      at += wrote;
    }
    setp(buffer_.data(), buffer_.data() + buffer_.size());
    return 0;
  }

 private:
  int fd_;
  std::vector<char> buffer_;
  bool error_ = false;
  int errno_ = 0;
  std::uint64_t offset_ = 0;
};

/// Input streambuf reading from a file descriptor (not owned).
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd, std::size_t buffer_size = 8192)
      : fd_(fd), buffer_(buffer_size) {
    setg(buffer_.data(), buffer_.data(), buffer_.data());
  }

  FdInBuf(const FdInBuf&) = delete;
  FdInBuf& operator=(const FdInBuf&) = delete;

  /// True after a clean end-of-stream (peer closed); false on error.
  [[nodiscard]] bool eof() const noexcept { return eof_; }
  /// True after a read error; last_errno() says why.
  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] int last_errno() const noexcept { return errno_; }
  /// Bytes successfully read from the fd since construction.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    while (true) {
      const ssize_t got = ::read(fd_, buffer_.data(), buffer_.size());
      if (got > 0) {
        offset_ += static_cast<std::uint64_t>(got);
        setg(buffer_.data(), buffer_.data(),
             buffer_.data() + static_cast<std::size_t>(got));
        return traits_type::to_int_type(*gptr());
      }
      if (got == 0) {
        eof_ = true;
        return traits_type::eof();
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLIN, 0};
        if (::poll(&pfd, 1, -1) >= 0 || errno == EINTR) {
          continue;
        }
      }
      error_ = true;
      errno_ = errno;
      return traits_type::eof();
    }
  }

 private:
  int fd_;
  std::vector<char> buffer_;
  bool eof_ = false;
  bool error_ = false;
  int errno_ = 0;
  std::uint64_t offset_ = 0;
};

/// Convenience owners pairing a buf with its stream.
class FdOStream {
 public:
  explicit FdOStream(int fd) : buf_(fd), stream_(&buf_) {}
  std::ostream& get() noexcept { return stream_; }
  [[nodiscard]] FdOutBuf& buf() noexcept { return buf_; }

 private:
  FdOutBuf buf_;
  std::ostream stream_;
};

class FdIStream {
 public:
  explicit FdIStream(int fd) : buf_(fd), stream_(&buf_) {}
  std::istream& get() noexcept { return stream_; }
  [[nodiscard]] FdInBuf& buf() noexcept { return buf_; }

 private:
  FdInBuf buf_;
  std::istream stream_;
};

}  // namespace ocep
