// Bounded single-producer / single-consumer ring buffer.
//
// Lock-free in the classic two-index form: the producer owns head_, the
// consumer owns tail_, and each release-stores its own index after
// touching a slot so the other side's acquire-load orders the slot
// access.  try_push/try_pop never block — backoff policy (spin, yield,
// sleep) is the caller's concern, which lets the pipeline count
// queue-full stalls explicitly.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace ocep {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer only.  False when the ring is full.
  bool try_push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      return false;
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only.  False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return false;
    }
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy (exact when called by the producer between its
  /// own pushes; the consumer may concurrently pop).  Telemetry only.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head - tail;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  /// Separate cache lines so the producer's head stores don't invalidate
  /// the consumer's tail line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace ocep
