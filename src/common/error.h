// Exception hierarchy for the OCEP library.
//
// Recoverable, caller-visible failures (malformed pattern text, corrupt
// dump files) are reported with exceptions per the Core Guidelines (E.2);
// internal invariant violations use OCEP_ASSERT instead.
#pragma once

#include <stdexcept>
#include <string>

namespace ocep {

/// Base class for all OCEP library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the pattern lexer/parser on malformed pattern text.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when a dump file cannot be decoded (bad magic, truncation, ...).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Raised on semantically invalid pattern definitions (unknown class ids,
/// contradictory constraints, unbound variables).
class PatternError : public Error {
 public:
  explicit PatternError(const std::string& what) : Error(what) {}
};

}  // namespace ocep
