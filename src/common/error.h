// Exception hierarchy for the OCEP library.
//
// Recoverable, caller-visible failures (malformed pattern text, corrupt
// dump files) are reported with exceptions per the Core Guidelines (E.2);
// internal invariant violations use OCEP_ASSERT instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ocep {

/// Base class for all OCEP library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the pattern lexer/parser on malformed pattern text.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when a dump file cannot be decoded (bad magic, truncation, ...).
///
/// Readers that know where in the stream decoding failed attach the byte
/// offset (and, for framed session streams, the frame index) so a corrupt
/// recording can be inspected at the exact position instead of by bisection.
/// Either position is -1 when unknown.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}

  SerializationError(const std::string& what, std::int64_t byte_offset,
                     std::int64_t frame_index = -1)
      : Error(annotate(what, byte_offset, frame_index)),
        byte_offset_(byte_offset),
        frame_index_(frame_index) {}

  [[nodiscard]] std::int64_t byte_offset() const noexcept {
    return byte_offset_;
  }
  [[nodiscard]] std::int64_t frame_index() const noexcept {
    return frame_index_;
  }

 private:
  static std::string annotate(const std::string& what, std::int64_t byte,
                              std::int64_t frame) {
    std::string out = what;
    if (byte >= 0) {
      out += " (at byte " + std::to_string(byte);
      if (frame >= 0) {
        out += ", frame " + std::to_string(frame);
      }
      out += ")";
    }
    return out;
  }

  std::int64_t byte_offset_ = -1;
  std::int64_t frame_index_ = -1;
};

/// Raised by the append-only segment store (src/store) on conditions
/// recovery must not paper over: a manifest that fails its CRC, a segment
/// the manifest names but the directory lacks, or a record that fails CRC
/// in the *middle* of the log (a failure at the tail is a torn write and
/// is truncated instead).  Positioned like SerializationError, but at the
/// granularity the operator needs to act: file path + byte offset.
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error(what) {}

  StoreError(const std::string& what, std::string file,
             std::int64_t byte_offset)
      : Error(annotate(what, file, byte_offset)),
        file_(std::move(file)),
        byte_offset_(byte_offset) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::int64_t byte_offset() const noexcept {
    return byte_offset_;
  }

 private:
  static std::string annotate(const std::string& what, const std::string& file,
                              std::int64_t byte) {
    std::string out = what;
    out += " (" + file;
    if (byte >= 0) {
      out += " at byte " + std::to_string(byte);
    }
    out += ")";
    return out;
  }

  std::string file_;
  std::int64_t byte_offset_ = -1;
};

/// Raised on semantically invalid pattern definitions (unknown class ids,
/// contradictory constraints, unbound variables).
class PatternError : public Error {
 public:
  explicit PatternError(const std::string& what) : Error(what) {}
};

/// Raised when a leaf-history invariant is violated by the caller —
/// an out-of-order append or an unknown trace.  Positioned like
/// SerializationError: the offending trace id and event index travel with
/// the message so a bad ingestion path can be pinpointed without a core
/// dump (these conditions used to be OCEP_ASSERT aborts).
class HistoryError : public Error {
 public:
  HistoryError(const std::string& what, std::uint32_t trace,
               std::uint32_t index)
      : Error(what + " (trace " + std::to_string(trace) + ", event index " +
              std::to_string(index) + ")"),
        trace_(trace),
        index_(index) {}

  [[nodiscard]] std::uint32_t trace() const noexcept { return trace_; }
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

 private:
  std::uint32_t trace_;
  std::uint32_t index_;
};

}  // namespace ocep
