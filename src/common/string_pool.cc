#include "common/string_pool.h"

#include <memory>

#include "common/assert.h"

namespace ocep {

StringPool::StringPool() {
  strings_.emplace_back();  // symbol 0 == ""
  index_.emplace(std::string_view{strings_.front()}, 0U);
}

Symbol StringPool::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) {
    return Symbol{it->second};
  }
  strings_.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(strings_.size() - 1);
  index_.emplace(std::string_view{strings_.back()}, id);
  return Symbol{id};
}

bool StringPool::lookup(std::string_view s, Symbol& out) const {
  if (auto it = index_.find(s); it != index_.end()) {
    out = Symbol{it->second};
    return true;
  }
  return false;
}

std::string_view StringPool::view(Symbol sym) const {
  const auto id = static_cast<std::uint32_t>(sym);
  OCEP_ASSERT(id < strings_.size());
  return strings_[id];
}

}  // namespace ocep
