// Deterministic pseudo-random number generation.
//
// Every simulated workload and property test is seeded explicitly so runs
// are reproducible bit-for-bit; nothing in the library reads entropy from
// the environment.  The generator is xoshiro256** (public domain, Blackman
// & Vigna), seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace ocep {

/// Small, fast, deterministic RNG.  Satisfies enough of
/// UniformRandomBitGenerator to be used with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Plain modulo mapping; the bias is negligible for the bounds used here
    // (workload parameters, never cryptography).
    return operator()() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// True with probability numerator/denominator.
  bool chance(std::uint64_t numerator, std::uint64_t denominator) noexcept {
    return below(denominator) < numerator;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ocep
