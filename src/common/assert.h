// Lightweight always-on assertion for library invariants.
//
// Unlike <cassert>, OCEP_ASSERT stays active in release builds: the matcher
// relies on interval/ordering invariants whose violation would silently
// produce wrong matches, which is worse than an abort for a monitoring tool.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ocep::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ocep: assertion failed: %s (%s:%d)%s%s\n", expr, file,
               line, msg[0] != '\0' ? " - " : "", msg);
  std::abort();
}

}  // namespace ocep::detail

#define OCEP_ASSERT(expr)                                             \
  ((expr) ? static_cast<void>(0)                                      \
          : ::ocep::detail::assert_fail(#expr, __FILE__, __LINE__, ""))

#define OCEP_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                       \
          : ::ocep::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
