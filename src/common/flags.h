// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value` and `--name value`; anything else is rejected so
// typos fail loudly instead of silently running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ocep {

class Flags {
 public:
  /// Parses argv.  Throws ocep::Error on malformed input or, after all
  /// get_* calls, on flags nobody consumed (see check_unused).
  Flags(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view default_value);
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t default_value);
  [[nodiscard]] double get_double(std::string_view name, double default_value);
  [[nodiscard]] bool get_bool(std::string_view name, bool default_value);

  /// Throws if any provided flag was never consumed by a get_* call.
  void check_unused() const;

  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_name_;
  }

 private:
  struct Entry {
    std::string value;
    bool consumed = false;
  };

  std::string program_name_;
  std::map<std::string, Entry, std::less<>> values_;
};

}  // namespace ocep
