#include "common/flags.h"

#include <charconv>
#include <stdexcept>

#include "common/error.h"

namespace ocep {
namespace {

std::string_view strip_dashes(std::string_view arg) {
  if (arg.substr(0, 2) != "--") {
    throw Error("flag must start with --: '" + std::string(arg) + "'");
  }
  return arg.substr(2);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) {
    program_name_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view body = strip_dashes(arg);
    std::string name;
    std::string value;
    if (auto eq = body.find('='); eq != std::string_view::npos) {
      name = std::string(body.substr(0, eq));
      value = std::string(body.substr(eq + 1));
    } else {
      name = std::string(body);
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        value = argv[++i];
      } else {
        value = "true";  // bare flag => boolean
      }
    }
    if (name.empty()) {
      throw Error("empty flag name in '" + std::string(arg) + "'");
    }
    if (!values_.emplace(std::move(name), Entry{std::move(value)}).second) {
      throw Error("duplicate flag --" + std::string(body));
    }
  }
}

std::string Flags::get_string(std::string_view name,
                              std::string_view default_value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return std::string(default_value);
  }
  it->second.consumed = true;
  return it->second.value;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t default_value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  it->second.consumed = true;
  const std::string& text = it->second.value;
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw Error("flag --" + std::string(name) + " expects an integer, got '" +
                text + "'");
  }
  return out;
}

double Flags::get_double(std::string_view name, double default_value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  it->second.consumed = true;
  const std::string& text = it->second.value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(text, &pos);
    if (pos != text.size()) {
      throw std::invalid_argument(text);
    }
    return out;
  } catch (const std::exception&) {
    throw Error("flag --" + std::string(name) + " expects a number, got '" +
                text + "'");
  }
}

bool Flags::get_bool(std::string_view name, bool default_value) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  it->second.consumed = true;
  const std::string& text = it->second.value;
  if (text == "true" || text == "1" || text == "yes") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    return false;
  }
  throw Error("flag --" + std::string(name) + " expects a boolean, got '" +
              text + "'");
}

void Flags::check_unused() const {
  for (const auto& [name, entry] : values_) {
    if (!entry.consumed) {
      throw Error("unknown flag --" + name);
    }
  }
}

}  // namespace ocep
