// One reactor shard: the single-threaded epoll loop that owns a slice of
// the ingest plane — its own listener, connections, tenants, and metrics
// registry — so every tenant's Monitor + SessionClient stays
// single-threaded and lock-free no matter how many shards the daemon
// runs.
//
// Tenant affinity.  A tenant lives on shard `shard_for(name, N)` — a
// stable FNV-1a hash of its name — so a reconnecting producer always
// lands back on the shard that holds its session state, and a restart
// with a different shard count repartitions deterministically.  All
// shards listen on the same port via SO_REUSEPORT; the kernel picks an
// arbitrary shard per connect, and a shard that accepts a handshake for
// a tenant it does not own migrates the connection (fd + any bytes
// buffered past the handshake) to the owner before the ack is sent, so
// the producer never observes the hop.
//
// Cross-thread traffic reaches a shard only through its mailbox: post()
// runs a closure on the shard thread (the admin plane uses this for
// /healthz and /checkpoint), adopt() delivers a migrating connection.
// Both wake the reactor via its self-pipe; the shard drains the mailbox
// once per loop iteration.  Everything else — conns_, tenants_, the
// session state machines — is touched exclusively by the shard thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/listener.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "net/replicator.h"
#include "net/server.h"
#include "net/tenant.h"
#include "obs/metrics.h"
#include "store/buffer_pool.h"
#include "store/compactor.h"
#include "store/tenant_store.h"

namespace ocep::net {

// shard_for (the affinity hash) lives in net/placement.h, next to the
// override map that can re-route around it.

/// A connection mid-migration between shards: the socket, the parsed
/// handshake that revealed the tenant's affinity, and whatever the
/// source shard had buffered past the handshake envelope.
struct ConnHandoff {
  OwnedFd fd;
  HandshakeRequest request;
  std::string leftover;
};

/// A whole tenant mid-migration between shards: the serialized OCEPNTC1
/// image (the same bytes a checkpoint file would hold), bookkeeping the
/// image deliberately omits, and — when a producer was attached — the
/// live socket with both directions' buffered bytes so the stream
/// resumes without losing a byte in either direction.
struct TenantHandoff {
  std::string name;
  std::string blob;      ///< Tenant::checkpoint() bytes
  OwnedFd fd;            ///< attached socket; invalid when detached
  std::string leftover;  ///< inbound bytes buffered past the last parse
  std::string outbound;  ///< unflushed reverse-channel bytes
  std::uint64_t bytes_in = 0;  ///< cumulative, for governance budgets
  std::uint64_t detach_deadline_ms = 0;  ///< linger expiry carried over
  std::uint64_t migrations = 0;          ///< hops including this one
  /// Source shard's store epoch for this tenant; the destination appends
  /// its base at store_epoch + 1 so cross-log recovery picks it over the
  /// source's (now tombstoned) copy.  0 when the store is off.
  std::uint64_t store_epoch = 0;
  std::size_t from_shard = 0;
  bool bounced = false;  ///< adoption failed; returning to from_shard
};

class Shard {
 public:
  /// Binds this shard's ingest listener (SO_REUSEPORT when the daemon
  /// runs more than one shard) and restores the checkpoint partition
  /// owned by `index` from the shared directory.  `tenant_total` is the
  /// daemon-wide tenant count the max_tenants limit is enforced against;
  /// `placement` is the daemon-wide placement/override map (already
  /// loaded from disk) that routing consults.
  Shard(const ServerConfig& config, std::size_t index,
        std::size_t shard_count, std::uint16_t ingest_port, bool reuseport,
        std::atomic<std::size_t>& tenant_total, PlacementMap& placement);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return ingest_->port();
  }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// Sibling shards for connection migration, indexed by shard number
  /// (peers[index()] == this).  Set once before run().
  void set_peers(std::vector<Shard*> peers) { peers_ = std::move(peers); }

  /// Serves until request_stop(); call from exactly one thread.
  void run();

  /// Async-signal-safe stop: flips the flag and wakes the reactor.
  void request_stop() noexcept;

  /// Runs `task` on the shard thread at the next loop iteration.  Tasks
  /// posted after the shard stopped still run (once, during the final
  /// mailbox drain) so waiters are never abandoned.
  void post(std::function<void()> task);

  /// Delivers a migrating connection; called from a sibling shard.
  void adopt(ConnHandoff handoff);

  /// Delivers a migrating tenant; called from a sibling shard.
  void adopt_tenant(TenantHandoff handoff);

  /// Live tenant migration source side; must run on the shard thread
  /// (post() it).  Freezes `name` at a frame boundary, serializes it, and
  /// hands tenant + attached socket to `target`'s mailbox.  Returns false
  /// (tenant untouched) when the tenant is absent, the target invalid,
  /// the shard stopping, or a migration-hook fault fired.
  bool migrate_tenant(const std::string& name, std::size_t target);

  /// Services any mail still queued after run() returned (a tenant
  /// handed off by a sibling that stopped a beat later).  Caller must
  /// guarantee the shard thread is done (Server::run() joins first).
  void drain_stranded();

  /// Shard-local registry.  Reads are thread-safe any time (instruments
  /// are atomics); the admin plane merges all shard registries per
  /// scrape.
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return registry_;
  }

  /// Disowns store records for tenants this shard holds but does not own
  /// (stale copies after a reshard).  Server calls it once after every
  /// shard has restored — tombstoning during restore could erase a
  /// sibling's only copy before that sibling scanned it.
  void settle_store();

  // --- shard-thread or post-run access only -------------------------
  [[nodiscard]] Tenant* find_tenant(const std::string& name);
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size() + spilled_.size();
  }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return conns_.size();
  }
  /// One checkpoint per tenant into the shared directory (tmp + rename).
  std::size_t write_checkpoints();
  /// This shard's tenants as comma-joined /healthz JSON objects.
  [[nodiscard]] std::string healthz_rows();
  /// This shard's store/replication status as one /healthz JSON object.
  [[nodiscard]] std::string healthz_shard_json();

 private:
  static constexpr std::uint64_t kTagWake = 0;
  static constexpr std::uint64_t kTagIngest = 1;
  static constexpr std::uint64_t kTagRepl = 2;
  static constexpr std::uint64_t kFirstConnId = 16;

  [[nodiscard]] static std::uint64_t now_ms() noexcept;

  void restore_checkpoints();
  void open_store();
  void restore_from_store();
  /// Rebuilds a tenant from a stored image: restore the base (or
  /// re-register genesis patterns) and replay the input deltas.
  [[nodiscard]] std::unique_ptr<Tenant> rebuild_tenant(
      const std::string& name, const store::TenantImage& image);
  /// Appends a full image of `tenant` at >= min_epoch (requires
  /// can_checkpoint()).
  void store_rebase(Tenant& tenant, std::uint64_t min_epoch);
  /// Group commit: append pending input deltas, re-base heavy tenants,
  /// fsync, then run the spill pass.  Returns whether every store
  /// mutation succeeded — a false return leaves the failed tenants'
  /// pending bytes queued for the next (backed-off) attempt.
  bool flush_store();
  void spill_pass();
  /// Reloads a spilled tenant from the store; nullptr on failure (the
  /// spilled entry is kept so a retry is possible).
  [[nodiscard]] Tenant* unspill(const std::string& name);
  /// The per-tenant spill adapter binding `name` to this shard's store +
  /// buffer pool; nullptr when the span tier is off (no store, no pool
  /// budget, or pipeline-mode tenants).
  [[nodiscard]] SpanSink* span_sink_for(const std::string& name);
  /// Drops `name`'s adapter and pool frames (tenant left this shard).
  void drop_span_sink(const std::string& name);
  /// Kills span records the rebuilt tenant no longer references (crash
  /// orphans: spilled, then released in RAM, then crashed before sync).
  void reconcile_spans(Tenant& tenant);
  /// Runs a store mutation, absorbing StoreError into the store.errors
  /// counter (an I/O fault must not take the reactor down); returns
  /// whether it succeeded.
  bool store_try(const std::function<void()>& fn);
  /// Folds store stats deltas into this shard's registry counters.
  void fold_store_stats();
  [[nodiscard]] std::uint64_t flush_interval_ms() const noexcept;
  void accept_ingest();
  void drain_mailbox();
  void adopt_now(ConnHandoff handoff);
  void adopt_tenant_now(TenantHandoff handoff);
  void bounce_or_drop(TenantHandoff handoff);
  /// Raw OCEPNTC1 bytes straight to `<name>.ckp` (tmp + rename): the
  /// stop_-raced adoption path, where no reactor will run again.
  void write_blob_checkpoint(const std::string& name,
                             const std::string& blob);
  void migrate(Conn& conn, const HandshakeRequest& request,
               std::size_t target);
  void on_conn_event(std::uint64_t id, std::uint32_t events);
  void on_readable(Conn& conn);
  void advance_handshake(Conn& conn);
  void handle_handshake(Conn& conn, const HandshakeRequest& request);
  void reject(Conn& conn, const std::string& message);
  void on_stream_bytes(Conn& conn);
  void pump_tenant(Conn& conn, Tenant& tenant);
  void send_fin(Conn& conn, Tenant& tenant);
  void queue_or_close(Conn& conn, std::string bytes);
  void settle(std::uint64_t id);
  void want_epollout(Conn& conn, bool want);
  void close_conn(std::uint64_t id);
  void detach_tenant(Conn& conn);
  void sweep_timers();
  [[nodiscard]] int loop_timeout_ms() const;
  void graceful_shutdown();

  const ServerConfig& config_;
  std::size_t index_;
  std::size_t shard_count_;
  std::atomic<std::size_t>& tenant_total_;
  PlacementMap& placement_;
  std::vector<Shard*> peers_;

  Poller poller_;
  std::unique_ptr<Listener> ingest_;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex mail_mutex_;
  std::atomic<bool> mail_pending_{false};
  std::vector<std::function<void()>> mail_tasks_;
  std::vector<ConnHandoff> mail_handoffs_;
  std::vector<TenantHandoff> mail_tenant_handoffs_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::uint64_t clock_ms_ = 0;

  obs::Registry registry_;

  /// Per-tenant registry instruments plus the last snapshot folded into
  /// them (session counters are cumulative; the registry wants deltas).
  struct Meters {
    obs::Counter* bytes = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* events = nullptr;
    obs::Counter* corrupt = nullptr;
    std::uint64_t last_bytes = 0;
    std::uint64_t last_frames = 0;
    std::uint64_t last_events = 0;
    std::uint64_t last_corrupt = 0;
  };
  [[nodiscard]] Meters& meters_for(Tenant& tenant);
  void update_meters(Tenant& tenant);
  /// Primes a fresh Meters snapshot at the tenant's current cumulative
  /// values without adding — an adopted tenant's history was already
  /// counted by the shards it lived on.
  void seed_meters(Tenant& tenant);
  std::map<std::string, Meters> meters_;

  /// Append-only tenant store (null when config.store_dir is empty).
  std::unique_ptr<store::TenantStore> store_;
  /// Per-tenant durability bookkeeping while the store is on.
  struct Durable {
    std::string pending;  ///< input bytes not yet appended to the log
    std::uint64_t bytes_since_base = 0;  ///< delta chain length, for re-base
    std::uint64_t last_active_ms = 0;    ///< spill-pass coldness key
  };
  std::map<std::string, Durable> durable_;
  /// Tenants evicted from RAM to the store; the metadata /healthz and a
  /// reconnect gate need without reloading the image.
  struct Spilled {
    TenantState state = TenantState::kStreaming;
    std::string shed_reason;
    std::uint64_t bytes_in = 0;
    std::uint64_t migrations = 0;
    std::uint64_t events = 0;
    /// Unspill-failure backoff: reloads are refused until retry_at_ms
    /// (capped doubling), so a producer hammering a tenant whose image
    /// sits on a faulting disk cannot turn every reconnect into an I/O
    /// storm.
    std::uint64_t retry_at_ms = 0;
    std::uint64_t retry_backoff_ms = 0;
  };
  std::map<std::string, Spilled> spilled_;
  /// Tenants found in this shard's log at restore but owned elsewhere;
  /// tombstoned by settle_store() after every shard has scanned.
  std::vector<std::string> store_foreign_;
  std::uint64_t next_flush_ms_ = 0;
  bool store_work_pending_ = false;
  /// Disk-fault degradation: a failed flush tick doubles the retry delay
  /// (capped) instead of killing the daemon; /healthz flags it.
  std::uint64_t flush_backoff_ms_ = 0;
  bool store_degraded_ = false;
  std::uint64_t append_errors_ = 0;
  /// Warm-standby link (null unless config.replicate_host is set).
  std::unique_ptr<Replicator> replicator_;
  /// Stats snapshots already folded into the registry (fold by delta).
  store::LogStats last_log_stats_;
  store::TenantStoreStats last_store_stats_;
  store::BufferPoolStats last_pool_stats_;
  store::CompactorStats last_compactor_stats_;

  /// Span storage tier (null unless the store is on, pool_bytes > 0, and
  /// tenants run synchronous monitors).  The pool caches decoded span
  /// records shard-wide; each tenant gets one StoreSpanSink adapter
  /// routing matcher spills/faults to its log records.
  class StoreSpanSink;
  std::unique_ptr<store::BufferPool> pool_;
  std::map<std::string, std::unique_ptr<StoreSpanSink>> span_sinks_;
  /// Background segment compactor (null unless compact_ratio > 0); runs
  /// as an incremental state machine on this shard thread, never a
  /// separate owner of the log.
  std::unique_ptr<store::Compactor> compactor_;
  std::uint64_t unspill_errors_ = 0;
};

}  // namespace ocep::net
