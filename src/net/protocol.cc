#include "net/protocol.h"

#include <cstring>
#include <limits>

#include "common/crc32c.h"

namespace ocep::net {
namespace {

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xffU));
  out.push_back(static_cast<char>((v >> 8U) & 0xffU));
  out.push_back(static_cast<char>((v >> 16U) & 0xffU));
  out.push_back(static_cast<char>((v >> 24U) & 0xffU));
}

std::uint32_t read_u32le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1]))
          << 8U) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
          << 16U) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
          << 24U);
}

/// Bounded decoder over a complete, CRC-verified body.
class Cursor {
 public:
  explicit Cursor(std::string_view buf) : buf_(buf) {}

  std::uint64_t u64() {
    std::uint64_t value = 0;
    int shift = 0;
    while (ok_) {
      if (pos_ >= buf_.size() || shift >= 64) {
        ok_ = false;
        break;
      }
      const auto c = static_cast<unsigned char>(buf_[pos_++]);
      value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) {
        return value;
      }
      shift += 7;
    }
    return 0;
  }

  std::string_view str() {
    const std::uint64_t size = u64();
    if (!ok_ || size > buf_.size() - pos_) {
      ok_ = false;
      return {};
    }
    const std::string_view s = buf_.substr(pos_, size);
    pos_ += size;
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == buf_.size();
  }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string envelope(const char magic[8], std::string_view body) {
  std::string out;
  out.reserve(8 + 8 + body.size());
  out.append(magic, 8);
  put_u32le(out, static_cast<std::uint32_t>(body.size()));
  put_u32le(out, crc32c(body));
  out.append(body);
  return out;
}

/// Shared envelope scanner: magic(8) | len u32le | crc u32le | body.
ParseStatus parse_envelope(std::string_view buf, std::size_t& pos,
                           const char magic[8], std::string_view& body,
                           std::string& error) {
  if (buf.size() - pos < 16) {
    return ParseStatus::kNeedMore;
  }
  if (std::memcmp(buf.data() + pos, magic, 8) != 0) {
    error = "bad protocol magic";
    return ParseStatus::kError;
  }
  const std::uint32_t len = read_u32le(buf.data() + pos + 8);
  if (len > kMaxHandshakeBody) {
    error = "oversized body (" + std::to_string(len) + " bytes)";
    return ParseStatus::kError;
  }
  if (buf.size() - pos < 16 + static_cast<std::size_t>(len)) {
    return ParseStatus::kNeedMore;
  }
  const std::uint32_t stored_crc = read_u32le(buf.data() + pos + 12);
  body = buf.substr(pos + 16, len);
  if (crc32c(body) != stored_crc) {
    error = "body CRC mismatch";
    return ParseStatus::kError;
  }
  pos += 16 + len;
  return ParseStatus::kDone;
}

}  // namespace

std::string encode_handshake(const HandshakeRequest& request) {
  std::string body;
  put_varint(body, request.flags);
  put_string(body, request.tenant);
  put_varint(body, request.patterns.size());
  for (const std::string& pattern : request.patterns) {
    put_string(body, pattern);
  }
  return envelope(kHandshakeMagic, body);
}

std::string encode_ack(const HandshakeAck& ack) {
  std::string body;
  put_varint(body, static_cast<std::uint64_t>(ack.status));
  put_varint(body, ack.resume_position);
  put_string(body, ack.message);
  put_varint(body, ack.shard);
  return envelope(kAckMagic, body);
}

std::string encode_resync_frame(const ResyncRequest& request) {
  std::string body;
  put_varint(body, request.request_id);
  put_varint(body, request.next_position);
  std::string out;
  out.push_back(kReverseResync);
  put_u32le(out, static_cast<std::uint32_t>(body.size()));
  put_u32le(out, crc32c(body));
  out.append(body);
  return out;
}

std::string encode_fin_frame(bool degraded, std::string_view message) {
  std::string body;
  put_varint(body, degraded ? 1 : 0);
  put_string(body, message);
  std::string out;
  out.push_back(kReverseFin);
  put_u32le(out, static_cast<std::uint32_t>(body.size()));
  put_u32le(out, crc32c(body));
  out.append(body);
  return out;
}

std::string encode_notice_frame(std::string_view message) {
  std::string body;
  put_string(body, message);
  std::string out;
  out.push_back(kReverseNotice);
  put_u32le(out, static_cast<std::uint32_t>(body.size()));
  put_u32le(out, crc32c(body));
  out.append(body);
  return out;
}

ParseStatus parse_handshake(std::string_view buf, std::size_t& pos,
                            HandshakeRequest& out, std::string& error) {
  std::string_view body;
  const ParseStatus status =
      parse_envelope(buf, pos, kHandshakeMagic, body, error);
  if (status != ParseStatus::kDone) {
    return status;
  }
  Cursor cursor(body);
  out.flags = cursor.u64();
  out.tenant = std::string(cursor.str());
  const std::uint64_t n = cursor.u64();
  if (!cursor.ok() || n > 1024) {
    error = "malformed handshake body";
    return ParseStatus::kError;
  }
  out.patterns.clear();
  out.patterns.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.patterns.emplace_back(cursor.str());
  }
  if (!cursor.done() || out.tenant.empty()) {
    error = "malformed handshake body";
    return ParseStatus::kError;
  }
  return ParseStatus::kDone;
}

ParseStatus parse_ack(std::string_view buf, std::size_t& pos,
                      HandshakeAck& out, std::string& error) {
  std::string_view body;
  const ParseStatus status = parse_envelope(buf, pos, kAckMagic, body, error);
  if (status != ParseStatus::kDone) {
    return status;
  }
  Cursor cursor(body);
  const std::uint64_t raw_status = cursor.u64();
  out.resume_position = cursor.u64();
  out.message = std::string(cursor.str());
  // The shard field joined the ack later; tolerate its absence so a new
  // client still parses a pre-rebalance server's acks.
  out.shard = cursor.done() ? 0 : cursor.u64();
  if (!cursor.done() ||
      raw_status > static_cast<std::uint64_t>(AckStatus::kRejected)) {
    error = "malformed ack body";
    return ParseStatus::kError;
  }
  out.status = static_cast<AckStatus>(raw_status);
  return ParseStatus::kDone;
}

ParseStatus parse_reverse_frame(std::string_view buf, std::size_t& pos,
                                ReverseFrame& out, std::string& error) {
  if (buf.size() - pos < 9) {
    return ParseStatus::kNeedMore;
  }
  const char type = buf[pos];
  if (type != kReverseResync && type != kReverseFin &&
      type != kReverseNotice) {
    error = "unknown reverse frame type";
    return ParseStatus::kError;
  }
  const std::uint32_t len = read_u32le(buf.data() + pos + 1);
  if (len > kMaxHandshakeBody) {
    error = "oversized reverse frame";
    return ParseStatus::kError;
  }
  if (buf.size() - pos < 9 + static_cast<std::size_t>(len)) {
    return ParseStatus::kNeedMore;
  }
  const std::uint32_t stored_crc = read_u32le(buf.data() + pos + 5);
  const std::string_view body = buf.substr(pos + 9, len);
  if (crc32c(body) != stored_crc) {
    error = "reverse frame CRC mismatch";
    return ParseStatus::kError;
  }
  Cursor cursor(body);
  out = ReverseFrame{};
  out.type = type;
  switch (type) {
    case kReverseResync:
      out.resync.request_id = cursor.u64();
      out.resync.next_position = cursor.u64();
      break;
    case kReverseFin:
      out.degraded = cursor.u64() == 1;
      out.message = std::string(cursor.str());
      break;
    default:  // kReverseNotice
      out.message = std::string(cursor.str());
      break;
  }
  if (!cursor.done()) {
    error = "malformed reverse frame body";
    return ParseStatus::kError;
  }
  pos += 9 + len;
  return ParseStatus::kDone;
}

}  // namespace ocep::net
