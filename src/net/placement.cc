#include "net/placement.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/crc32c.h"
#include "common/durable.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep::net {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kPlacementMagic = "OCEPPLC1";
constexpr std::string_view kPlacementFile = "placement.map";
constexpr std::uint64_t kMaxPlacementEntries = 1U << 20U;

void put_u32le(std::ostream& out, std::uint32_t value) {
  char raw[4];
  raw[0] = static_cast<char>(value & 0xffU);
  raw[1] = static_cast<char>((value >> 8U) & 0xffU);
  raw[2] = static_cast<char>((value >> 16U) & 0xffU);
  raw[3] = static_cast<char>((value >> 24U) & 0xffU);
  out.write(raw, 4);
}

}  // namespace

std::size_t shard_for(std::string_view tenant,
                      std::size_t shard_count) noexcept {
  if (shard_count <= 1) {
    return 0;
  }
  // FNV-1a, 64-bit: stable across builds and platforms, so restart with a
  // different shard count repartitions tenants deterministically.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : tenant) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % shard_count);
}

PlacementMap::PlacementMap(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      load_hints_(shard_count_, 0.0) {}

std::size_t PlacementMap::owner_of(std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tenant);
  if (it != entries_.end() && it->second.shard < shard_count_) {
    return it->second.shard;
  }
  return shard_for(tenant, shard_count_);
}

std::optional<std::size_t> PlacementMap::shard_of(
    std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tenant);
  if (it == entries_.end() || it->second.shard >= shard_count_) {
    return std::nullopt;
  }
  return it->second.shard;
}

bool PlacementMap::is_migrating(std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tenant);
  return it != entries_.end() && it->second.migrating;
}

std::size_t PlacementMap::route_or_assign(const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tenant);
  if (it != entries_.end() && it->second.shard < shard_count_) {
    return it->second.shard;
  }
  // Least-loaded: primary key is the rebalancer's load hint, resident
  // count breaks ties (so an idle daemon round-robins), index last for
  // determinism.
  std::vector<std::size_t> counts(shard_count_, 0);
  for (const auto& [name, entry] : entries_) {
    if (entry.shard < shard_count_) {
      ++counts[entry.shard];
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < shard_count_; ++i) {
    const bool lighter =
        load_hints_[i] < load_hints_[best] ||
        (load_hints_[i] == load_hints_[best] && counts[i] < counts[best]);
    if (lighter) {
      best = i;
    }
  }
  entries_[tenant] = Entry{best, /*overridden=*/true, /*migrating=*/false};
  return best;
}

void PlacementMap::set_resident(const std::string& tenant, std::size_t shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tenant];
  entry.shard = shard;
  entry.migrating = false;
}

void PlacementMap::begin_migration(const std::string& tenant,
                                   std::size_t target) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tenant];
  entry.shard = target;
  entry.overridden = true;
  entry.migrating = true;
}

void PlacementMap::finish_migration(const std::string& tenant,
                                    std::size_t shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tenant];
  entry.shard = shard;
  entry.overridden = true;
  entry.migrating = false;
}

void PlacementMap::cancel_migration(const std::string& tenant,
                                    std::size_t shard) {
  finish_migration(tenant, shard);
}

void PlacementMap::set_load_hints(std::vector<double> hints) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (hints.size() == shard_count_) {
    load_hints_ = std::move(hints);
  }
}

std::vector<std::pair<std::string, std::size_t>> PlacementMap::residents()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    if (!entry.migrating && entry.shard < shard_count_) {
      out.emplace_back(name, entry.shard);
    }
  }
  return out;
}

std::size_t PlacementMap::override_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.overridden) {
      ++n;
    }
  }
  return n;
}

void PlacementMap::save(std::ostream& out) const {
  std::ostringstream body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t overridden = 0;
    for (const auto& [name, entry] : entries_) {
      if (entry.overridden) {
        ++overridden;
      }
    }
    poet::put_varint(body, overridden);
    for (const auto& [name, entry] : entries_) {
      if (!entry.overridden) {
        continue;
      }
      poet::put_string(body, name);
      poet::put_varint(body, entry.shard);
    }
  }
  const std::string bytes = body.str();
  out.write(kPlacementMagic.data(),
            static_cast<std::streamsize>(kPlacementMagic.size()));
  put_u32le(out, crc32c(bytes));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw SerializationError("placement map: write failed");
  }
}

void PlacementMap::load(std::istream& in) {
  char magic[8];
  in.read(magic, 8);
  if (in.gcount() != 8 || std::string_view(magic, 8) != kPlacementMagic) {
    throw SerializationError("placement map: bad magic");
  }
  char raw_crc[4];
  in.read(raw_crc, 4);
  if (in.gcount() != 4) {
    throw SerializationError("placement map: truncated header");
  }
  std::uint32_t expect = 0;
  for (int i = 3; i >= 0; --i) {
    expect = (expect << 8U) | static_cast<unsigned char>(raw_crc[i]);
  }
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (crc32c(body) != expect) {
    throw SerializationError("placement map: CRC mismatch");
  }
  std::istringstream body_in(body);
  const std::uint64_t count = poet::get_varint(body_in);
  if (count > kMaxPlacementEntries) {
    throw SerializationError("placement map: implausible entry count");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = poet::get_string(body_in);
    const std::uint64_t shard = poet::get_varint(body_in);
    // A shard index from a bigger daemon falls back to the hash: the
    // tenant's checkpoint is then restored by its hash owner.
    if (shard >= shard_count_) {
      continue;
    }
    entries_[name] =
        Entry{static_cast<std::size_t>(shard), /*overridden=*/true,
              /*migrating=*/false};
  }
  if (body_in.peek() != std::char_traits<char>::eof()) {
    throw SerializationError("placement map: trailing bytes");
  }
}

bool PlacementMap::save_file(const std::string& dir) const {
  if (dir.empty()) {
    return true;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path final_path = fs::path(dir) / kPlacementFile;
  try {
    // Serialize first, then replace the file durably (fsync + rename +
    // dir fsync) — a crash or power cut never leaves a torn map, and the
    // rename itself cannot be lost.
    std::ostringstream out;
    save(out);
    return write_file_durable(final_path.string(), std::move(out).str());
  } catch (const Error&) {
    return false;
  }
}

void PlacementMap::load_file(const std::string& dir) {
  if (dir.empty()) {
    return;
  }
  const fs::path path = fs::path(dir) / kPlacementFile;
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) {
    return;
  }
  std::ifstream in(path, std::ios::binary);
  load(in);
}

}  // namespace ocep::net
