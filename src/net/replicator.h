// Primary-side replication: tails one shard's segment log and streams it
// to the standby daemon (store/replication.h has the wire protocol and
// the follower-side writer).
//
// The Replicator is owned by its Shard and driven entirely by the shard's
// epoll loop — tick() each iteration (backoff + dialing), on_event() for
// socket readiness under kTagRepl, pump() after every group commit.  The
// disk log is the replication buffer: nothing unsent is held in RAM
// across disconnects.  On (re)connect the follower's state frame names
// its per-segment durable sizes + CRCs; the primary verifies each one is
// a byte prefix of its own log and resumes from the reported offsets, or
// sends a reset and streams from scratch when they are not ('R' — the
// only way a diverged or damaged follower is repaired, so the follower
// can never silently diverge).
//
// Shipping only ever covers *synced* bytes (SegmentLog::segments()
// reports the offset of the last group commit), so a follower is never
// ahead of what the primary would itself recover after a crash.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/poller.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "store/replication.h"
#include "store/segment_log.h"

namespace ocep::net {

class Replicator {
 public:
  /// `tag` is the poller tag the owning shard reserved for this socket;
  /// `log` outlives the Replicator and is only touched from the shard
  /// thread (both run there).
  Replicator(std::string host, std::uint16_t port, std::size_t shard_index,
             std::size_t shard_count, const store::SegmentLog& log,
             Poller& poller, std::uint64_t tag, obs::Registry& registry);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Drives the backoff/dial state machine; call once per loop iteration.
  void tick(std::uint64_t now_ms);

  /// Socket readiness for this replicator's poller tag.
  void on_event(std::uint32_t events);

  /// Ships newly synced bytes; call after each group commit (and cheap
  /// to call when nothing changed).
  void pump();

  /// Upper bound the shard should place on its epoll wait so backoff
  /// retries fire on time; INT_MAX when connected or idle.
  [[nodiscard]] int timeout_bound_ms(std::uint64_t now_ms) const;

  [[nodiscard]] bool connected() const noexcept {
    return state_ == State::kStreaming;
  }
  [[nodiscard]] std::uint64_t lag_bytes() const noexcept {
    return lag_bytes_;
  }

  /// One JSON object for /healthz: connection, acked position, lag.
  [[nodiscard]] std::string healthz_json() const;

  /// Closes the link (shutdown path); safe to call repeatedly.
  void close_link();

 private:
  enum class State : std::uint8_t {
    kBackoff,     ///< waiting out retry_at_ms_
    kConnecting,  ///< non-blocking connect in flight
    kHello,       ///< hello sent, waiting for the follower state frame
    kStreaming,
  };

  void start_connect(std::uint64_t now_ms);
  void disconnect(std::uint64_t now_ms, const char* reason);
  void on_connect_writable();
  void handle_state_frame(std::vector<store::ReplSegmentState> states);
  void handle_acks();
  void flush();
  void send(std::string bytes);
  void refresh_lag();

  std::string host_;
  std::uint16_t port_;
  std::size_t shard_index_;
  std::size_t shard_count_;
  const store::SegmentLog& log_;
  Poller& poller_;
  std::uint64_t tag_;
  obs::Registry& registry_;

  State state_ = State::kBackoff;
  OwnedFd fd_;
  std::uint64_t retry_at_ms_ = 0;  ///< 0 = retry immediately
  std::uint64_t backoff_ms_ = 0;
  std::uint64_t clock_ms_ = 0;

  std::string rbuf_;
  std::string wbuf_;
  std::size_t wbuf_off_ = 0;

  /// Follower bytes per segment this connection has confirmed or shipped.
  std::map<std::uint32_t, std::uint64_t> view_;
  std::uint32_t last_ship_segment_ = 0;
  bool dirty_since_commit_ = false;
  std::uint64_t commit_seq_ = 0;

  /// Record-frame walk over the shipped byte stream (store's
  /// count_record_frames carry) — both ends count identically.
  std::string count_pending_;
  std::uint64_t records_streamed_ = 0;  ///< this connection
  store::ReplAck last_ack_;
  bool acked_once_ = false;
  std::uint64_t lag_bytes_ = 0;
  std::uint64_t connects_local_ = 0;  ///< registry counters are shared per
  std::uint64_t resyncs_local_ = 0;   ///< shard; healthz wants this link's

  obs::Gauge* gauge_connected_;
  obs::Gauge* gauge_lag_bytes_;
  obs::Gauge* gauge_lag_records_;
};

}  // namespace ocep::net
