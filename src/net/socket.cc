#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ocep::net {
namespace {

[[noreturn]] void throw_errno(const std::string& op) {
  throw NetError(op + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void OwnedFd::reset(int fd) noexcept {
  if (fd_ >= 0) {
    // POSIX leaves the descriptor state after EINTR-on-close unspecified;
    // retrying close() risks racing a concurrent open, so close once.
    ::close(fd_);
  }
  fd_ = fd;
}

IoResult read_some(int fd, char* buf, std::size_t len) {
  while (true) {
    const ssize_t got = ::read(fd, buf, len);
    if (got > 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(got), 0};
    }
    if (got == 0) {
      return {IoStatus::kEof, 0, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t len) {
  while (true) {
    const ssize_t wrote = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (wrote >= 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(wrote), 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: TCP_NODELAY fails on non-TCP fds (socketpair in tests).
  static_cast<void>(
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)));
}

OwnedFd tcp_listen(const std::string& host, std::uint16_t& port,
                   int backlog, bool reuseport) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw_errno("socket");
  }
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) {
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    throw_errno("getsockname");
  }
  port = ntohs(bound.sin_port);
  set_nonblocking(fd.get());
  return fd;
}

OwnedFd tcp_connect(const std::string& host, std::uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw_errno("socket");
  }
  const sockaddr_in addr = make_addr(host, port);
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) {
      continue;
    }
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd.get());
  return fd;
}

OwnedFd tcp_connect_begin(const std::string& host, std::uint16_t port,
                          bool& in_progress) {
  OwnedFd fd(
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) {
    throw_errno("socket");
  }
  const sockaddr_in addr = make_addr(host, port);
  in_progress = false;
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) {
      continue;
    }
    if (errno == EINPROGRESS) {
      in_progress = true;
      break;
    }
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd.get());
  return fd;
}

void write_all(int fd, std::string_view bytes, int timeout_ms) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const IoResult result =
        write_some(fd, bytes.data() + done, bytes.size() - done);
    switch (result.status) {
      case IoStatus::kOk:
        done += result.bytes;
        continue;
      case IoStatus::kWouldBlock: {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0 && errno != EINTR) {
          throw_errno("poll(POLLOUT)");
        }
        if (ready == 0) {
          throw NetError("write timed out after " + std::to_string(done) +
                         " of " + std::to_string(bytes.size()) + " bytes");
        }
        continue;
      }
      case IoStatus::kEof:
      case IoStatus::kError:
        throw NetError("write failed after " + std::to_string(done) +
                       " of " + std::to_string(bytes.size()) + " bytes: " +
                       std::strerror(result.error));
    }
  }
}

bool wait_readable(int fd, int timeout_ms) {
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("poll(POLLIN)");
    }
    return ready > 0;
  }
}

}  // namespace ocep::net
