#include "net/server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <future>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "net/shard.h"

namespace ocep::net {
namespace {

/// How long the admin plane waits for a shard thread to answer a posted
/// /healthz or /checkpoint task before reporting 503.  Generous: a shard
/// only stalls this long when a tenant pipeline drain wedges.
constexpr std::chrono::seconds kShardReplyDeadline{2};

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  // Placement first: shards consult it (overrides loaded from the
  // state dir) when partitioning the restore scan.
  placement_ = std::make_unique<PlacementMap>(config_.shards);
  try {
    placement_->load_file(config_.state_dir());
  } catch (const Error&) {
    // A corrupt placement map degrades to pure hash placement; the
    // tenant checkpoints themselves are untouched.
    registry_.counter("net.placement_load_errors").add(1);
  }
  const bool reuseport = config_.shards > 1;
  // Shard 0 binds first so an ephemeral port request resolves once; the
  // siblings then join the same port via SO_REUSEPORT.
  shards_.push_back(std::make_unique<Shard>(config_, 0, config_.shards,
                                            config_.port, reuseport,
                                            tenant_total_, *placement_));
  const std::uint16_t ingest_port = shards_[0]->port();
  for (std::size_t i = 1; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_, i, config_.shards,
                                              ingest_port, reuseport,
                                              tenant_total_, *placement_));
  }
  std::vector<Shard*> peers;
  peers.reserve(shards_.size());
  for (const auto& shard : shards_) {
    peers.push_back(shard.get());
  }
  for (const auto& shard : shards_) {
    shard->set_peers(peers);
  }
  // Only after every shard has scanned every log: a shard tombstoning a
  // record it holds but does not own must not race a sibling that still
  // needs to read that copy.
  for (const auto& shard : shards_) {
    shard->settle_store();
  }

  admin_ = std::make_unique<Listener>(config_.host, config_.admin_port);
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw NetError("pipe2(wake): " + std::string(std::strerror(errno)));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  poller_.add(wake_read_, EPOLLIN, kTagWake);
  poller_.add(admin_->fd(), EPOLLIN, kTagAdmin);
  clock_ms_ = now_ms();
}

Server::~Server() {
  if (wake_read_ >= 0) {
    ::close(wake_read_);
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
  }
}

std::uint16_t Server::port() const noexcept { return shards_[0]->port(); }
std::uint16_t Server::admin_port() const noexcept { return admin_->port(); }

std::uint64_t Server::now_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000U +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000U;
}

void Server::request_shutdown() noexcept {
  for (const auto& shard : shards_) {
    shard->request_stop();
  }
  stop_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'q';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

std::uint64_t Server::counter_value(std::string_view key) const {
  std::uint64_t total = registry_.counter_value(key);
  for (const auto& shard : shards_) {
    total += shard->metrics().counter_value(key);
  }
  return total;
}

void Server::merge_metrics(obs::Registry& into) const {
  for (const auto& shard : shards_) {
    into.merge_from(shard->metrics());
  }
  into.merge_from(registry_);
}

Tenant* Server::find_tenant(const std::string& name) {
  for (const auto& shard : shards_) {
    if (Tenant* tenant = shard->find_tenant(name)) {
      return tenant;
    }
  }
  return nullptr;
}

std::size_t Server::tenant_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tenant_count();
  }
  return total;
}

int Server::tenant_shard(const std::string& name) const {
  // The placement map, not the shard tenant tables: it answers under its
  // own mutex, so this is safe against live shard threads (a mid-flight
  // migration reports the shard routing already points at).
  const std::optional<std::size_t> shard = placement_->shard_of(name);
  return shard ? static_cast<int>(*shard) : -1;
}

std::size_t Server::write_checkpoints() {
  std::size_t written = 0;
  for (const auto& shard : shards_) {
    written += shard->write_checkpoints();
  }
  if (!placement_->save_file(config_.state_dir())) {
    registry_.counter("net.placement_save_errors").add(1);
  }
  return written;
}

const obs::Registry& Server::shard_metrics(std::size_t index) const {
  return shards_.at(index)->metrics();
}

void Server::run() {
  running_.store(true, std::memory_order_release);
  shard_threads_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard_threads_.emplace_back([s = shard.get()] { s->run(); });
  }
  const auto join_all = [this] {
    for (std::thread& thread : shard_threads_) {
      thread.join();
    }
    shard_threads_.clear();
    // A tenant handed off to a shard that had already drained its final
    // mailbox would otherwise be stranded (and silently lost) in the
    // queue; service leftovers now that every shard thread is done.
    for (const auto& shard : shards_) {
      shard->drain_stranded();
    }
    running_.store(false, std::memory_order_release);
  };
  try {
    run_admin();
  } catch (...) {
    request_shutdown();
    join_all();
    throw;
  }
  join_all();
  if (!placement_->save_file(config_.state_dir())) {
    registry_.counter("net.placement_save_errors").add(1);
  }
}

void Server::run_admin() {
  // The admin plane has no tick-driven work beyond idle sweeps, so a
  // coarse timeout keeps the thread cold between scrapes; a live
  // rebalancer needs ticks at least as fine as its interval.
  int timeout_ms = 200;
  if (config_.rebalance) {
    const std::uint64_t interval =
        std::max<std::uint64_t>(config_.rebalance_interval_ms, 1);
    timeout_ms = static_cast<int>(std::min<std::uint64_t>(200, interval));
  }
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = poller_.wait(events, timeout_ms);
    clock_ms_ = now_ms();
    for (std::size_t i = 0; i < n; ++i) {
      const Poller::Event& ev = events[i];
      switch (ev.tag) {
        case kTagWake: {
          char sink[64];
          while (::read(wake_read_, sink, sizeof(sink)) > 0) {
          }
          break;
        }
        case kTagAdmin:
          accept_admin();
          break;
        default:
          on_admin_event(ev.tag, ev.events);
          break;
      }
    }
    sweep_admin_timers();
    if (config_.rebalance && clock_ms_ >= next_rebalance_ms_) {
      next_rebalance_ms_ = clock_ms_ + config_.rebalance_interval_ms;
      rebalance_cycle();
    }
  }
  poller_.del(admin_->fd());
  admin_->close();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    close_admin(id);
  }
}

void Server::accept_admin() {
  admin_->accept_ready([this](OwnedFd fd) {
    if (conns_.size() >= config_.max_connections) {
      registry_.counter("net.accept_overflow").add(1);
      return;  // fd closes on scope exit; the peer sees a reset
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(fd), id, ConnKind::kAdmin);
    conn->last_active_ms = clock_ms_;
    poller_.add(conn->fd(), EPOLLIN, id);
    conns_.emplace(id, std::move(conn));
    registry_.counter("net.accepted", "plane=\"admin\"").add(1);
    registry_.gauge("net.connections").add(1);
  });
}

void Server::on_admin_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;  // closed earlier in this batch
  }
  Conn& conn = *it->second;
  conn.last_active_ms = clock_ms_;
  if ((events & EPOLLIN) != 0 || (events & (EPOLLHUP | EPOLLERR)) != 0) {
    const IoStatus status = conn.fill();
    if (conn.state() == ConnState::kRequest) {
      advance_admin(conn);
    } else {
      conn.consume(conn.pending().size());
    }
    if (status == IoStatus::kEof) {
      if (conn.state() != ConnState::kClosed) {
        conn.set_state(ConnState::kClosing);
      }
    } else if (status == IoStatus::kError) {
      conn.set_state(ConnState::kClosed);
    }
  }
  settle_admin(id);
}

void Server::advance_admin(Conn& conn) {
  const std::string_view pending = conn.pending();
  const std::size_t head_end = pending.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (pending.size() > Conn::kMaxPrefaceBytes) {
      conn.set_state(ConnState::kClosed);
    }
    return;
  }
  const std::string_view head = pending.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  const std::string method(sp1 == std::string_view::npos ? line
                                                         : line.substr(0, sp1));
  std::string path(
      sp1 == std::string_view::npos || sp2 == std::string_view::npos
          ? std::string_view{}
          : line.substr(sp1 + 1, sp2 - sp1 - 1));
  conn.consume(head_end + 4);

  std::string query;
  if (const std::size_t qpos = path.find('?'); qpos != std::string::npos) {
    query = path.substr(qpos + 1);
    path.resize(qpos);
  }

  if (method == "GET" && path == "/metrics") {
    respond_http(conn, 200, "text/plain; version=0.0.4",
                 metrics_prometheus());
  } else if (method == "GET" && path == "/healthz") {
    std::string body = healthz_json();
    if (body.empty()) {
      respond_http(conn, 503, "application/json",
                   "{\"error\":\"shard did not answer\"}\n");
    } else {
      respond_http(conn, 200, "application/json", std::move(body));
    }
  } else if ((method == "POST" || method == "GET") && path == "/checkpoint") {
    if (config_.checkpoint_dir.empty() && config_.store_dir.empty()) {
      respond_http(conn, 409, "application/json",
                   "{\"error\":\"no checkpoint_dir or store_dir\"}\n");
    } else {
      const long written = checkpoint_live();
      if (written < 0) {
        respond_http(conn, 503, "application/json",
                     "{\"error\":\"shard did not answer\"}\n");
      } else {
        respond_http(conn, 200, "application/json",
                     "{\"written\":" + std::to_string(written) + "}\n");
      }
    }
  } else if (method == "POST" && path == "/rebalance") {
    // Plain POST runs one scoring + migration cycle; ?tenant=X&to=N
    // forces a single targeted migration instead.
    std::string tenant;
    std::size_t target = 0;
    bool targeted = false;
    std::size_t pos = 0;
    while (pos < query.size()) {
      std::size_t amp = query.find('&', pos);
      if (amp == std::string::npos) {
        amp = query.size();
      }
      const std::string_view pair =
          std::string_view(query).substr(pos, amp - pos);
      const std::size_t eq = pair.find('=');
      if (eq != std::string_view::npos) {
        const std::string_view key = pair.substr(0, eq);
        const std::string_view value = pair.substr(eq + 1);
        if (key == "tenant") {
          tenant = std::string(value);
        } else if (key == "to") {
          targeted = true;
          target = 0;
          for (const char c : value) {
            if (c < '0' || c > '9') {
              targeted = false;
              break;
            }
            target = target * 10 + static_cast<std::size_t>(c - '0');
          }
        }
      }
      pos = amp + 1;
    }
    if (!tenant.empty() || targeted) {
      if (tenant.empty() || !targeted || target >= shards_.size()) {
        respond_http(conn, 409, "application/json",
                     "{\"error\":\"need tenant=<name>&to=<shard>\"}\n");
      } else if (migrate_tenant(tenant, target)) {
        respond_http(conn, 200, "application/json",
                     "{\"migrated\":\"" + tenant +
                         "\",\"to\":" + std::to_string(target) + "}\n");
      } else {
        respond_http(conn, 409, "application/json",
                     "{\"error\":\"migration refused\"}\n");
      }
    } else {
      const std::size_t moves = rebalance_cycle();
      respond_http(conn, 200, "application/json",
                   "{\"moves\":" + std::to_string(moves) + "}\n");
    }
  } else {
    respond_http(conn, 404, "text/plain", "not found\n");
  }
}

void Server::respond_http(Conn& conn, int code,
                          const std::string& content_type, std::string body) {
  const char* reason = code == 200   ? "OK"
                       : code == 404 ? "Not Found"
                       : code == 409 ? "Conflict"
                       : code == 503 ? "Service Unavailable"
                                     : "Error";
  std::string response = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  if (!conn.queue_write(std::move(response))) {
    registry_.counter("net.write_overflow").add(1);
    conn.set_state(ConnState::kClosed);
    return;
  }
  if (conn.state() != ConnState::kClosed) {
    conn.set_state(ConnState::kClosing);
  }
}

std::string Server::metrics_prometheus() const {
  // Merge shard registries into a scratch per scrape: instruments are
  // relaxed atomics, so reading them while shard threads record is safe,
  // and a scratch keeps the merged totals from compounding.
  obs::Registry merged;
  merge_metrics(merged);
  return merged.to_prometheus();
}

std::string Server::healthz_json() {
  std::vector<std::string> rows(shards_.size());
  std::vector<std::string> status(shards_.size());
  std::size_t connections = conns_.size();
  if (running_.load(std::memory_order_acquire)) {
    // Tenant state belongs to shard threads; render on each one.
    using Reply = std::tuple<std::string, std::string, std::size_t>;
    std::vector<std::future<Reply>> replies;
    replies.reserve(shards_.size());
    for (const auto& shard : shards_) {
      auto promise = std::make_shared<std::promise<Reply>>();
      replies.push_back(promise->get_future());
      Shard* raw = shard.get();
      shard->post([promise, raw] {
        promise->set_value({raw->healthz_rows(), raw->healthz_shard_json(),
                            raw->connection_count()});
      });
    }
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (replies[i].wait_for(kShardReplyDeadline) !=
          std::future_status::ready) {
        return {};
      }
      Reply reply = replies[i].get();
      rows[i] = std::move(std::get<0>(reply));
      status[i] = std::move(std::get<1>(reply));
      connections += std::get<2>(reply);
    }
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      rows[i] = shards_[i]->healthz_rows();
      status[i] = shards_[i]->healthz_shard_json();
      connections += shards_[i]->connection_count();
    }
  }
  std::ostringstream out;
  out << "{\"shards\":" << shards_.size() << ",\"shards_status\":[";
  for (std::size_t i = 0; i < status.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    out << status[i];
  }
  out << "],\"tenants\":[";
  bool first = true;
  for (const std::string& shard_rows : rows) {
    if (shard_rows.empty()) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << shard_rows;
  }
  out << "],\"connections\":" << connections << "}\n";
  return out.str();
}

long Server::checkpoint_live() {
  if (!running_.load(std::memory_order_acquire)) {
    return static_cast<long>(write_checkpoints());
  }
  std::vector<std::future<std::size_t>> replies;
  replies.reserve(shards_.size());
  for (const auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<std::size_t>>();
    replies.push_back(promise->get_future());
    Shard* raw = shard.get();
    shard->post([promise, raw] { promise->set_value(raw->write_checkpoints()); });
  }
  long written = 0;
  for (auto& reply : replies) {
    if (reply.wait_for(kShardReplyDeadline) != std::future_status::ready) {
      return -1;
    }
    written += static_cast<long>(reply.get());
  }
  if (!placement_->save_file(config_.state_dir())) {
    registry_.counter("net.placement_save_errors").add(1);
  }
  return written;
}

bool Server::migrate_tenant(const std::string& name, std::size_t target) {
  if (!running_.load(std::memory_order_acquire) || target >= shards_.size()) {
    return false;
  }
  const std::size_t source = placement_->owner_of(name);
  if (source >= shards_.size() || source == target) {
    return false;
  }
  auto promise = std::make_shared<std::promise<bool>>();
  std::future<bool> reply = promise->get_future();
  Shard* raw = shards_[source].get();
  raw->post([promise, raw, name, target] {
    promise->set_value(raw->migrate_tenant(name, target));
  });
  if (reply.wait_for(kShardReplyDeadline) != std::future_status::ready) {
    return false;
  }
  return reply.get();
}

std::size_t Server::rebalance_cycle() {
  registry_.counter("net.rebalance_cycles").add(1);
  const std::size_t shard_count = shards_.size();
  if (shard_count < 2) {
    return 0;
  }
  const std::uint64_t now = now_ms();

  // Score: per-tenant byte rate over the window since the last cycle
  // (cumulative counters survive migration — each shard registry keeps
  // the bytes from the tenant's residency there, so the cross-shard sum
  // is monotone).  A tenant's first sighting scores 0: no move decisions
  // on a single sample.
  struct Candidate {
    std::string name;
    std::size_t shard;
    std::uint64_t rate;
  };
  std::vector<Candidate> candidates;
  std::vector<double> loads(shard_count, 0.0);
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [name, shard] : placement_->residents()) {
    const std::uint64_t total =
        counter_value("net.tenant.bytes{tenant=\"" + name + "\"}");
    const auto it = rebalance_last_bytes_.find(name);
    const std::uint64_t rate =
        it == rebalance_last_bytes_.end() || total < it->second
            ? 0
            : total - it->second;
    totals[name] = total;
    candidates.push_back(Candidate{name, shard, rate});
    loads[shard] += static_cast<double>(rate);
  }
  rebalance_last_bytes_ = std::move(totals);
  placement_->set_load_hints(loads);

  std::size_t hottest = 0;
  std::size_t coldest = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < shard_count; ++i) {
    sum += loads[i];
    if (loads[i] > loads[hottest]) {
      hottest = i;
    }
    if (loads[i] < loads[coldest]) {
      coldest = i;
    }
  }
  const double mean = sum / static_cast<double>(shard_count);
  // Hysteresis + an absolute imbalance floor: an idle or already-even
  // daemon must not churn tenants over measurement noise.
  if (loads[hottest] < mean * config_.rebalance_hysteresis ||
      loads[hottest] - loads[coldest] <=
          static_cast<double>(config_.rebalance_min_rate)) {
    return 0;
  }

  // Largest movers first: fewer migrations shed the most load.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.rate > b.rate;
            });
  std::size_t moves = 0;
  for (const Candidate& candidate : candidates) {
    if (moves >= config_.rebalance_budget || loads[hottest] <= mean) {
      break;
    }
    if (candidate.shard != hottest || candidate.rate == 0) {
      continue;
    }
    const auto cooled = rebalance_cooldown_.find(candidate.name);
    if (cooled != rebalance_cooldown_.end() && now < cooled->second) {
      continue;
    }
    // Re-pick the sink each move so the budget spreads across shards,
    // and skip movers so hot they would just invert the imbalance.
    coldest = 0;
    for (std::size_t i = 1; i < shard_count; ++i) {
      if (loads[i] < loads[coldest]) {
        coldest = i;
      }
    }
    if (coldest == hottest ||
        static_cast<double>(candidate.rate) >=
            loads[hottest] - loads[coldest]) {
      continue;
    }
    // Fire and forget: the source shard freezes + hands off on its own
    // thread; adoption lands whenever the destination drains its mail.
    Shard* raw = shards_[hottest].get();
    const std::string name = candidate.name;
    const std::size_t target = coldest;
    raw->post([raw, name, target] { raw->migrate_tenant(name, target); });
    rebalance_cooldown_[name] = now + config_.rebalance_cooldown_ms;
    loads[hottest] -= static_cast<double>(candidate.rate);
    loads[coldest] += static_cast<double>(candidate.rate);
    registry_.counter("net.rebalance_moves").add(1);
    ++moves;
  }
  // Expired cooldowns are dead weight; prune so the map stays bounded by
  // the live tenant set.
  for (auto it = rebalance_cooldown_.begin();
       it != rebalance_cooldown_.end();) {
    it = now >= it->second ? rebalance_cooldown_.erase(it) : ++it;
  }
  return moves;
}

void Server::settle_admin(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  if (conn.state() == ConnState::kClosed) {
    close_admin(id);
    return;
  }
  switch (conn.flush_writes()) {
    case IoStatus::kOk:
      want_epollout(conn, false);
      if (conn.state() == ConnState::kClosing) {
        close_admin(id);
      }
      break;
    case IoStatus::kWouldBlock:
      want_epollout(conn, true);
      break;
    case IoStatus::kEof:
    case IoStatus::kError:
      close_admin(id);
      break;
  }
}

void Server::want_epollout(Conn& conn, bool want) {
  if (want == conn.epollout_armed) {
    return;
  }
  poller_.mod(conn.fd(), want ? (EPOLLIN | EPOLLOUT) : EPOLLIN, conn.id());
  conn.epollout_armed = want;
}

void Server::close_admin(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  poller_.del(conn.fd());
  registry_.counter("net.bytes_in_total").add(conn.bytes_in());
  registry_.counter("net.bytes_out_total").add(conn.bytes_out());
  registry_.gauge("net.connections").add(-1);
  conns_.erase(it);
}

void Server::sweep_admin_timers() {
  clock_ms_ = now_ms();
  if (config_.idle_timeout_ms == 0) {
    return;
  }
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (clock_ms_ - conn->last_active_ms > config_.idle_timeout_ms) {
      idle.push_back(id);
    }
  }
  for (const std::uint64_t id : idle) {
    registry_.counter("net.idle_closed").add(1);
    close_admin(id);
  }
}

}  // namespace ocep::net
