#include "net/server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <future>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "net/shard.h"

namespace ocep::net {
namespace {

/// How long the admin plane waits for a shard thread to answer a posted
/// /healthz or /checkpoint task before reporting 503.  Generous: a shard
/// only stalls this long when a tenant pipeline drain wedges.
constexpr std::chrono::seconds kShardReplyDeadline{2};

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  const bool reuseport = config_.shards > 1;
  // Shard 0 binds first so an ephemeral port request resolves once; the
  // siblings then join the same port via SO_REUSEPORT.
  shards_.push_back(std::make_unique<Shard>(
      config_, 0, config_.shards, config_.port, reuseport, tenant_total_));
  const std::uint16_t ingest_port = shards_[0]->port();
  for (std::size_t i = 1; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        config_, i, config_.shards, ingest_port, reuseport, tenant_total_));
  }
  std::vector<Shard*> peers;
  peers.reserve(shards_.size());
  for (const auto& shard : shards_) {
    peers.push_back(shard.get());
  }
  for (const auto& shard : shards_) {
    shard->set_peers(peers);
  }

  admin_ = std::make_unique<Listener>(config_.host, config_.admin_port);
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw NetError("pipe2(wake): " + std::string(std::strerror(errno)));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  poller_.add(wake_read_, EPOLLIN, kTagWake);
  poller_.add(admin_->fd(), EPOLLIN, kTagAdmin);
  clock_ms_ = now_ms();
}

Server::~Server() {
  if (wake_read_ >= 0) {
    ::close(wake_read_);
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
  }
}

std::uint16_t Server::port() const noexcept { return shards_[0]->port(); }
std::uint16_t Server::admin_port() const noexcept { return admin_->port(); }

std::uint64_t Server::now_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000U +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000U;
}

void Server::request_shutdown() noexcept {
  for (const auto& shard : shards_) {
    shard->request_stop();
  }
  stop_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'q';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

std::uint64_t Server::counter_value(std::string_view key) const {
  std::uint64_t total = registry_.counter_value(key);
  for (const auto& shard : shards_) {
    total += shard->metrics().counter_value(key);
  }
  return total;
}

void Server::merge_metrics(obs::Registry& into) const {
  for (const auto& shard : shards_) {
    into.merge_from(shard->metrics());
  }
  into.merge_from(registry_);
}

Tenant* Server::find_tenant(const std::string& name) {
  for (const auto& shard : shards_) {
    if (Tenant* tenant = shard->find_tenant(name)) {
      return tenant;
    }
  }
  return nullptr;
}

std::size_t Server::tenant_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tenant_count();
  }
  return total;
}

int Server::tenant_shard(const std::string& name) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->find_tenant(name) != nullptr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::size_t Server::write_checkpoints() {
  std::size_t written = 0;
  for (const auto& shard : shards_) {
    written += shard->write_checkpoints();
  }
  return written;
}

void Server::run() {
  running_.store(true, std::memory_order_release);
  shard_threads_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard_threads_.emplace_back([s = shard.get()] { s->run(); });
  }
  try {
    run_admin();
  } catch (...) {
    request_shutdown();
    for (std::thread& thread : shard_threads_) {
      thread.join();
    }
    shard_threads_.clear();
    running_.store(false, std::memory_order_release);
    throw;
  }
  for (std::thread& thread : shard_threads_) {
    thread.join();
  }
  shard_threads_.clear();
  running_.store(false, std::memory_order_release);
}

void Server::run_admin() {
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    // The admin plane has no tick-driven work beyond idle sweeps, so a
    // coarse timeout keeps the thread cold between scrapes.
    const std::size_t n = poller_.wait(events, 200);
    clock_ms_ = now_ms();
    for (std::size_t i = 0; i < n; ++i) {
      const Poller::Event& ev = events[i];
      switch (ev.tag) {
        case kTagWake: {
          char sink[64];
          while (::read(wake_read_, sink, sizeof(sink)) > 0) {
          }
          break;
        }
        case kTagAdmin:
          accept_admin();
          break;
        default:
          on_admin_event(ev.tag, ev.events);
          break;
      }
    }
    sweep_admin_timers();
  }
  poller_.del(admin_->fd());
  admin_->close();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    close_admin(id);
  }
}

void Server::accept_admin() {
  admin_->accept_ready([this](OwnedFd fd) {
    if (conns_.size() >= config_.max_connections) {
      registry_.counter("net.accept_overflow").add(1);
      return;  // fd closes on scope exit; the peer sees a reset
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(fd), id, ConnKind::kAdmin);
    conn->last_active_ms = clock_ms_;
    poller_.add(conn->fd(), EPOLLIN, id);
    conns_.emplace(id, std::move(conn));
    registry_.counter("net.accepted", "plane=\"admin\"").add(1);
    registry_.gauge("net.connections").add(1);
  });
}

void Server::on_admin_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;  // closed earlier in this batch
  }
  Conn& conn = *it->second;
  conn.last_active_ms = clock_ms_;
  if ((events & EPOLLIN) != 0 || (events & (EPOLLHUP | EPOLLERR)) != 0) {
    const IoStatus status = conn.fill();
    if (conn.state() == ConnState::kRequest) {
      advance_admin(conn);
    } else {
      conn.consume(conn.pending().size());
    }
    if (status == IoStatus::kEof) {
      if (conn.state() != ConnState::kClosed) {
        conn.set_state(ConnState::kClosing);
      }
    } else if (status == IoStatus::kError) {
      conn.set_state(ConnState::kClosed);
    }
  }
  settle_admin(id);
}

void Server::advance_admin(Conn& conn) {
  const std::string_view pending = conn.pending();
  const std::size_t head_end = pending.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (pending.size() > Conn::kMaxPrefaceBytes) {
      conn.set_state(ConnState::kClosed);
    }
    return;
  }
  const std::string_view head = pending.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  const std::string method(sp1 == std::string_view::npos ? line
                                                         : line.substr(0, sp1));
  const std::string path(
      sp1 == std::string_view::npos || sp2 == std::string_view::npos
          ? std::string_view{}
          : line.substr(sp1 + 1, sp2 - sp1 - 1));
  conn.consume(head_end + 4);

  if (method == "GET" && path == "/metrics") {
    respond_http(conn, 200, "text/plain; version=0.0.4",
                 metrics_prometheus());
  } else if (method == "GET" && path == "/healthz") {
    std::string body = healthz_json();
    if (body.empty()) {
      respond_http(conn, 503, "application/json",
                   "{\"error\":\"shard did not answer\"}\n");
    } else {
      respond_http(conn, 200, "application/json", std::move(body));
    }
  } else if ((method == "POST" || method == "GET") && path == "/checkpoint") {
    if (config_.checkpoint_dir.empty()) {
      respond_http(conn, 409, "application/json",
                   "{\"error\":\"checkpoint_dir not configured\"}\n");
    } else {
      const long written = checkpoint_live();
      if (written < 0) {
        respond_http(conn, 503, "application/json",
                     "{\"error\":\"shard did not answer\"}\n");
      } else {
        respond_http(conn, 200, "application/json",
                     "{\"written\":" + std::to_string(written) + "}\n");
      }
    }
  } else {
    respond_http(conn, 404, "text/plain", "not found\n");
  }
}

void Server::respond_http(Conn& conn, int code,
                          const std::string& content_type, std::string body) {
  const char* reason = code == 200   ? "OK"
                       : code == 404 ? "Not Found"
                       : code == 409 ? "Conflict"
                       : code == 503 ? "Service Unavailable"
                                     : "Error";
  std::string response = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  if (!conn.queue_write(std::move(response))) {
    registry_.counter("net.write_overflow").add(1);
    conn.set_state(ConnState::kClosed);
    return;
  }
  if (conn.state() != ConnState::kClosed) {
    conn.set_state(ConnState::kClosing);
  }
}

std::string Server::metrics_prometheus() const {
  // Merge shard registries into a scratch per scrape: instruments are
  // relaxed atomics, so reading them while shard threads record is safe,
  // and a scratch keeps the merged totals from compounding.
  obs::Registry merged;
  merge_metrics(merged);
  return merged.to_prometheus();
}

std::string Server::healthz_json() {
  std::vector<std::string> rows(shards_.size());
  std::size_t connections = conns_.size();
  if (running_.load(std::memory_order_acquire)) {
    // Tenant state belongs to shard threads; render on each one.
    using Reply = std::pair<std::string, std::size_t>;
    std::vector<std::future<Reply>> replies;
    replies.reserve(shards_.size());
    for (const auto& shard : shards_) {
      auto promise = std::make_shared<std::promise<Reply>>();
      replies.push_back(promise->get_future());
      Shard* raw = shard.get();
      shard->post([promise, raw] {
        promise->set_value({raw->healthz_rows(), raw->connection_count()});
      });
    }
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (replies[i].wait_for(kShardReplyDeadline) !=
          std::future_status::ready) {
        return {};
      }
      Reply reply = replies[i].get();
      rows[i] = std::move(reply.first);
      connections += reply.second;
    }
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      rows[i] = shards_[i]->healthz_rows();
      connections += shards_[i]->connection_count();
    }
  }
  std::ostringstream out;
  out << "{\"shards\":" << shards_.size() << ",\"tenants\":[";
  bool first = true;
  for (const std::string& shard_rows : rows) {
    if (shard_rows.empty()) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << shard_rows;
  }
  out << "],\"connections\":" << connections << "}\n";
  return out.str();
}

long Server::checkpoint_live() {
  if (!running_.load(std::memory_order_acquire)) {
    return static_cast<long>(write_checkpoints());
  }
  std::vector<std::future<std::size_t>> replies;
  replies.reserve(shards_.size());
  for (const auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<std::size_t>>();
    replies.push_back(promise->get_future());
    Shard* raw = shard.get();
    shard->post([promise, raw] { promise->set_value(raw->write_checkpoints()); });
  }
  long written = 0;
  for (auto& reply : replies) {
    if (reply.wait_for(kShardReplyDeadline) != std::future_status::ready) {
      return -1;
    }
    written += static_cast<long>(reply.get());
  }
  return written;
}

void Server::settle_admin(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  if (conn.state() == ConnState::kClosed) {
    close_admin(id);
    return;
  }
  switch (conn.flush_writes()) {
    case IoStatus::kOk:
      want_epollout(conn, false);
      if (conn.state() == ConnState::kClosing) {
        close_admin(id);
      }
      break;
    case IoStatus::kWouldBlock:
      want_epollout(conn, true);
      break;
    case IoStatus::kEof:
    case IoStatus::kError:
      close_admin(id);
      break;
  }
}

void Server::want_epollout(Conn& conn, bool want) {
  if (want == conn.epollout_armed) {
    return;
  }
  poller_.mod(conn.fd(), want ? (EPOLLIN | EPOLLOUT) : EPOLLIN, conn.id());
  conn.epollout_armed = want;
}

void Server::close_admin(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  poller_.del(conn.fd());
  registry_.counter("net.bytes_in_total").add(conn.bytes_in());
  registry_.counter("net.bytes_out_total").add(conn.bytes_out());
  registry_.gauge("net.connections").add(-1);
  conns_.erase(it);
}

void Server::sweep_admin_timers() {
  clock_ms_ = now_ms();
  if (config_.idle_timeout_ms == 0) {
    return;
  }
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (clock_ms_ - conn->last_active_ms > config_.idle_timeout_ms) {
      idle.push_back(id);
    }
  }
  for (const std::uint64_t id : idle) {
    registry_.counter("net.idle_closed").add(1);
    close_admin(id);
  }
}

}  // namespace ocep::net
