// Per-connection state machine: buffers, write queue, and accounting.
//
// A Conn owns the mechanics of one accepted socket — edge-triggered
// read-until-EAGAIN, a bounded userspace write queue flushed until the
// kernel buffer pushes back, and byte counters — while the Server owns
// the policy (handshakes, tenants, HTTP routing).  Keeping the two apart
// means every EINTR/EAGAIN/short-write subtlety lives in exactly one
// place.
//
// Backpressure: outbound bytes queue in `wq_` only while the kernel
// buffer is full (EPOLLOUT rearms the flush).  The queue is bounded; a
// peer that stops reading long enough to overflow it is closed rather
// than allowed to pin server memory.  Inbound backpressure is the read
// loop itself: bytes are handed to the tenant session synchronously, so a
// slow pipeline simply slows the reads and lets TCP flow control push
// back to the producer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace ocep::net {

enum class ConnKind : std::uint8_t { kIngest, kAdmin };

enum class ConnState : std::uint8_t {
  kHandshake,  ///< ingest: waiting for the handshake envelope
  kStreaming,  ///< ingest: forwarding session frames to a tenant
  kRequest,    ///< admin: accumulating one HTTP request
  kClosing,    ///< flush the write queue, then close
  kClosed,
};

class Conn {
 public:
  Conn(OwnedFd fd, std::uint64_t id, ConnKind kind)
      : fd_(std::move(fd)),
        id_(id),
        kind_(kind),
        state_(kind == ConnKind::kAdmin ? ConnState::kRequest
                                        : ConnState::kHandshake) {}

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] ConnKind kind() const noexcept { return kind_; }
  [[nodiscard]] ConnState state() const noexcept { return state_; }
  void set_state(ConnState state) noexcept { state_ = state; }

  /// Drains the socket into the read buffer until EAGAIN, EOF, or error.
  /// Returns the terminal condition of the drain: kWouldBlock is the
  /// normal "caller should process what arrived" outcome; kEof and
  /// kError may still have delivered bytes first, so callers process the
  /// buffer before acting on them.
  [[nodiscard]] IoStatus fill();

  /// Unconsumed inbound bytes.
  [[nodiscard]] std::string_view pending() const noexcept {
    return std::string_view(rbuf_).substr(rpos_);
  }
  /// Marks `n` pending bytes consumed and compacts lazily.
  void consume(std::size_t n);
  /// Parser cursor into rbuf_ for incremental envelope parsing: the
  /// buffer with its consumed prefix, as (buffer view, consumed offset).
  [[nodiscard]] const std::string& rbuf() const noexcept { return rbuf_; }
  [[nodiscard]] std::size_t rpos() const noexcept { return rpos_; }

  /// Queues bytes and flushes opportunistically.  Returns false when the
  /// queue bound was exceeded (caller must close: the peer is not
  /// reading).
  [[nodiscard]] bool queue_write(std::string bytes);

  /// Writes queued bytes until EAGAIN or empty.  kOk means the queue is
  /// empty; kWouldBlock means EPOLLOUT should be armed.
  [[nodiscard]] IoStatus flush_writes();

  [[nodiscard]] bool write_pending() const noexcept { return !wq_.empty(); }

  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const noexcept {
    return bytes_out_;
  }

  /// Injects bytes ahead of socket reads, as if they had arrived on the
  /// wire.  Used when a connection migrates between reactor shards: the
  /// source shard hands over whatever it had buffered past the handshake
  /// and the adopting shard seeds its fresh Conn with them.
  void seed_inbound(std::string_view bytes) {
    rbuf_.append(bytes);
    bytes_in_ += bytes.size();
  }

  /// Relinquishes the socket without closing it (shard migration).  The
  /// Conn is dead afterwards (kClosed) and must be discarded.
  [[nodiscard]] OwnedFd take_fd() noexcept {
    state_ = ConnState::kClosed;
    return std::move(fd_);
  }

  /// Drains the write queue into one string without sending it,
  /// honouring the partial-write offset of the head chunk, and leaves the
  /// queue empty.  A live tenant migration carries these bytes to the
  /// adopting shard so no queued resync/FIN frame is lost mid-hop.
  [[nodiscard]] std::string take_pending_writes();

  /// Tenant this ingest connection is attached to ("" before handshake).
  std::string tenant;
  /// Millisecond timestamp of the last read/write, maintained by the
  /// server's clock for idle sweeps.
  std::uint64_t last_active_ms = 0;
  /// Set when EPOLLOUT interest is currently registered.
  bool epollout_armed = false;

  /// Hard bound on queued outbound bytes (control frames and admin
  /// responses only, so generous).
  static constexpr std::size_t kMaxWriteQueue = 8U << 20U;
  /// Bound on the inbound buffer while untrusted (handshake / HTTP head).
  static constexpr std::size_t kMaxPrefaceBytes = (1U << 20U) + 4096U;

 private:
  OwnedFd fd_;
  std::uint64_t id_;
  ConnKind kind_;
  ConnState state_;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  std::deque<std::string> wq_;
  std::size_t wq_bytes_ = 0;
  std::size_t wq_head_off_ = 0;  ///< bytes of wq_.front() already written
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace ocep::net
