// The serving daemon: N reactor shards for the ingest plane plus an
// admin-plane reactor on the run() caller's thread.
//
// Each shard (src/net/shard.h) is the PR-5 single-threaded epoll loop —
// it owns its listener, connections, tenants, and a private metrics
// registry, so the per-tenant Monitor + SessionClient remain
// single-threaded and lock-free at any shard count.  Tenants are placed
// by a stable affinity hash (shard_for); connections accepted by the
// wrong shard migrate at handshake time, before the ack is sent, so
// producers never observe the hop.  With shards == 1 the daemon behaves
// exactly like the original single-reactor server (no SO_REUSEPORT, one
// loop, same timings).
//
// Planes:
//   ingest (config.port)   — handshake envelope, then raw session frames
//                            forward and CRC-framed control frames back
//                            (docs/SERVER.md has the wire grammar).
//                            Shared by all shards via SO_REUSEPORT.
//   admin  (config.admin_port) — HTTP/1.0: GET /metrics (Prometheus,
//                            merged across shards), GET /healthz (JSON,
//                            aggregated), POST /checkpoint (fans out).
//
// Shutdown: request_shutdown() is async-signal-safe (atomic flags + one
// byte down each reactor's self-pipe).  Every shard drains its tenant
// pipelines, writes its checkpoint partition into the shared directory,
// and closes its connections; the admin loop then joins the shard
// threads and run() returns.  Tenants are retained after run() so
// embedders and tests can inspect final monitor state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/listener.h"
#include "net/placement.h"
#include "net/poller.h"
#include "net/tenant.h"
#include "obs/metrics.h"
#include "store/segment_log.h"

namespace ocep::net {

class Shard;

/// Phases of a live tenant migration (docs/SERVER.md "Rebalancing"):
/// freeze quiesces the tenant on the source shard (pipeline drained at a
/// frame boundary), transfer serializes the OCEPNTC1 blob plus any
/// attached socket through the destination's mailbox, adopt rebuilds the
/// tenant there and resumes byte-identically.
enum class MigrationPhase : std::uint8_t { kFreeze, kTransfer, kAdopt };

/// Test-only fault injection: invoked at each migration phase; returning
/// true makes that phase fail (freeze/transfer abort on the source,
/// adopt bounces the tenant back to it).  Called from shard threads —
/// must be thread-safe.  Production deployments leave it unset.
using MigrationHook =
    std::function<bool(MigrationPhase phase, std::string_view tenant)>;

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< ingest plane; 0 = ephemeral
  std::uint16_t admin_port = 0;  ///< admin plane; 0 = ephemeral
  /// Reactor shards for the ingest plane.  1 (the default) reproduces
  /// the single-reactor daemon; N > 1 runs N epoll loops on N threads
  /// behind SO_REUSEPORT listeners with tenant-affinity placement.
  std::size_t shards = 1;
  /// Monitor / matcher / session configuration stamped onto every tenant.
  TenantConfig tenant;
  /// Directory for OCEPNTC1 tenant checkpoints.  Non-empty enables
  /// checkpoint-on-shutdown, the /checkpoint admin trigger, and
  /// restore-on-start (every *.ckp found is loaded before serving, each
  /// shard restoring its affinity partition).
  std::string checkpoint_dir;
  /// Directory for the crash-consistent append-only tenant store
  /// (docs/ROBUSTNESS.md "Durability").  Non-empty supersedes
  /// checkpoint_dir for tenant state: each shard keeps a segment log
  /// under <store_dir>/shard-<i>, appends input deltas on the group
  /// commit interval, and replays base + deltas on restart.  Any *.ckp
  /// files in checkpoint_dir are still loaded once (upgrade path) and
  /// re-based into the log.
  std::string store_dir;
  /// Group-commit window: pending input bytes are appended + fsynced at
  /// most this often.  Crash loss is bounded by one window (acknowledged
  /// resume positions heal the tail on reconnect).
  std::uint64_t flush_interval_ms = 50;
  /// Byte budget for resident detached tenant state (0 = off).  Past it,
  /// the coldest finished detached tenants are written to the log and
  /// dropped from RAM; a reconnect reloads them transparently.
  std::uint64_t spill_bytes = 0;
  /// A tenant whose deltas-since-base exceed this is re-based (one full
  /// image append supersedes the delta chain); 0 disables re-basing.
  std::uint64_t store_rebase_bytes = 1ULL << 20;
  /// Segment rotation threshold for the store's log files.
  std::size_t store_segment_bytes = std::size_t{4} << 20;
  /// Byte budget for the shard's span buffer pool (store/buffer_pool.h).
  /// Non-zero — with the store on and tenant.monitor.worker_threads == 0
  /// — turns matcher history eviction into spill: evicted leaf-history
  /// spans append to the tenant's log as span records and fault back
  /// through the pool when a deep search needs them.  0 keeps plain
  /// eviction (the pre-pool behaviour).
  std::uint64_t pool_bytes = 0;
  /// Dead-byte ratio past which the background compactor rewrites a
  /// sealed segment's live spans (store/compactor.h); > 0 also moves
  /// store re-basing off the flush tick onto the compaction scheduler.
  /// <= 0 disables the compactor (re-basing stays inline).
  double compact_ratio = 0.0;
  /// Warm-standby target: every shard streams its segment log to this
  /// follower (empty host = replication off).  Requires store_dir.
  std::string replicate_host;
  std::uint16_t replicate_port = 0;
  /// Test-only crash injection around every store write/fsync/rename
  /// edge; see store::CrashHook.  Called from shard threads.
  store::CrashHook store_crash_hook;
  /// Connections silent this long are closed (their tenant detaches).
  std::uint64_t idle_timeout_ms = 30000;
  /// Grace for a disconnected producer to come back before its tenant is
  /// finalized (degraded if events are missing).
  std::uint64_t detach_linger_ms = 2000;
  /// Governance: shed a tenant past this many received bytes (0 = off).
  std::uint64_t max_tenant_bytes = 0;
  /// Governance: shed a tenant past this many corrupt frames (0 = off).
  std::uint64_t max_corrupt_frames = 4096;
  /// Per-shard connection bound (the kernel spreads accepts, so the
  /// daemon-wide ceiling is about shards * max_connections).
  std::size_t max_connections = 1024;
  /// Daemon-wide tenant bound, enforced across shards.
  std::size_t max_tenants = 256;
  /// Test/bench tap on every event released into a tenant monitor.
  /// With shards > 1 it is invoked concurrently from shard threads
  /// (serially per tenant); the hook must be thread-safe.
  ObserveHook observe_hook;
  /// Live rebalancing (docs/SERVER.md "Rebalancing").  Off by default:
  /// placement stays the pure affinity hash and nothing moves.  On, the
  /// admin thread scores shards by per-tenant byte rates every
  /// rebalance_interval_ms and migrates the hottest tenants off the
  /// hottest shard, and fresh tenants are placed least-loaded instead of
  /// by hash (recorded in the persisted placement override map).
  bool rebalance = false;
  std::uint64_t rebalance_interval_ms = 500;
  /// Hysteresis: the hottest shard must exceed the mean shard load by
  /// this factor before anything moves (guards against noise churn).
  double rebalance_hysteresis = 1.25;
  /// Migrations per rebalance cycle.
  std::size_t rebalance_budget = 4;
  /// Minimum byte-rate gap (per interval) between the hottest and
  /// coldest shard before a cycle acts.
  std::uint64_t rebalance_min_rate = 16384;
  /// A migrated tenant is not moved again for this long (anti-ping-pong).
  std::uint64_t rebalance_cooldown_ms = 2000;
  /// Test-only migration fault injection; see MigrationHook.
  MigrationHook migration_hook;

  /// Where cross-restart daemon state that is not tenant state (the
  /// placement override map) lives: checkpoint_dir when set, else
  /// store_dir, else empty (not persisted).
  [[nodiscard]] const std::string& state_dir() const noexcept {
    return checkpoint_dir.empty() ? store_dir : checkpoint_dir;
  }
};

class Server {
 public:
  /// Binds every shard listener and the admin plane, and restores any
  /// checkpoints; throws NetError when a port cannot be bound.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound ports (resolve ephemeral requests); valid after construction.
  /// All shards share the ingest port.
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::uint16_t admin_port() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Serves until request_shutdown(): spawns one thread per shard and
  /// runs the admin plane on the calling thread.
  void run();

  /// Async-signal-safe stop: flips every reactor's flag and wakes it.
  void request_shutdown() noexcept;

  /// Sum of a counter across every shard registry plus the admin-plane
  /// registry, looked up by canonical key (`name{labels}`).  Thread-safe
  /// at any time — this is how tests and embedders watch a live server.
  [[nodiscard]] std::uint64_t counter_value(std::string_view key) const;

  /// Merges every shard registry plus the admin-plane registry into
  /// `into` (counters add, gauges add, histograms merge bucket-wise).
  /// Thread-safe at any time; `into` is typically a scratch registry.
  void merge_metrics(obs::Registry& into) const;

  /// Post-run inspection (only call after run() returns or before it
  /// starts — tenant state is owned by shard threads while running).
  [[nodiscard]] Tenant* find_tenant(const std::string& name);
  [[nodiscard]] std::size_t tenant_count() const noexcept;
  /// Index of the shard holding `name`, or -1 when absent (post-run).
  [[nodiscard]] int tenant_shard(const std::string& name) const;

  /// The live placement map (thread-safe); tests watch migrations settle
  /// through shard_of()/is_migrating().
  [[nodiscard]] const PlacementMap& placement() const noexcept {
    return *placement_;
  }
  /// One shard's registry (thread-safe reads); load_gen derives per-shard
  /// utilization spread from these.
  [[nodiscard]] const obs::Registry& shard_metrics(std::size_t index) const;

  /// Forces one live migration of `name` to shard `target` and waits for
  /// the source shard to freeze + hand it off (not for the adoption —
  /// watch net.tenant_adoptions or placement() for that).  False when
  /// the tenant is unknown, the target is this shard or out of range,
  /// the server is not running, or the source did not answer in time.
  bool migrate_tenant(const std::string& name, std::size_t target);

  /// One load-scoring + migration pass (the same logic the periodic
  /// rebalancer runs); returns migrations initiated.  Thread-safe, but
  /// intended for the admin thread and tests.
  std::size_t rebalance_cycle();

  /// Writes one checkpoint per tenant into checkpoint_dir (tmp + rename,
  /// so a crash mid-write never leaves a torn file).  Returns the number
  /// written; 0 when no directory is configured.  Post-run only; while
  /// running, POST /checkpoint fans the same work out to shard threads.
  std::size_t write_checkpoints();

  /// Aggregated /healthz document (the same JSON GET /healthz serves);
  /// empty string when a shard failed to answer within the deadline.
  /// Thread-safe while running — rows are collected over the shard
  /// mailboxes, exactly as the admin plane does.
  [[nodiscard]] std::string healthz_json();

 private:
  static constexpr std::uint64_t kTagWake = 0;
  static constexpr std::uint64_t kTagAdmin = 2;
  static constexpr std::uint64_t kFirstConnId = 16;

  [[nodiscard]] static std::uint64_t now_ms() noexcept;

  void run_admin();
  void accept_admin();
  void on_admin_event(std::uint64_t id, std::uint32_t events);
  void advance_admin(Conn& conn);
  void respond_http(Conn& conn, int code, const std::string& content_type,
                    std::string body);
  /// Fans write_checkpoints out to every shard thread and sums; -1 when
  /// a shard failed to answer within the deadline.
  [[nodiscard]] long checkpoint_live();
  [[nodiscard]] std::string metrics_prometheus() const;
  void settle_admin(std::uint64_t id);
  void want_epollout(Conn& conn, bool want);
  void close_admin(std::uint64_t id);
  void sweep_admin_timers();

  ServerConfig config_;
  std::atomic<std::size_t> tenant_total_{0};
  /// Built (and placement.map loaded) before the shards, which hold
  /// references into it.
  std::unique_ptr<PlacementMap> placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> shard_threads_;

  /// Rebalancer state (admin thread only): last per-tenant byte totals
  /// for rate deltas, per-tenant cooldown deadlines, next cycle time.
  std::map<std::string, std::uint64_t> rebalance_last_bytes_;
  std::map<std::string, std::uint64_t> rebalance_cooldown_;
  std::uint64_t next_rebalance_ms_ = 0;

  Poller poller_;
  std::unique_ptr<Listener> admin_;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::uint64_t clock_ms_ = 0;

  /// Admin-plane instruments (accepts, scrape counts); shard registries
  /// hold everything ingest-side.  Merged views come from
  /// merge_metrics() / counter_value().
  obs::Registry registry_;
};

}  // namespace ocep::net
