// The serving loop: one epoll reactor multiplexing the ingest plane, the
// admin plane, and time.
//
// Single-threaded by design.  The reactor thread owns every connection,
// every tenant, and the registry; tenant *monitors* fan work out to their
// own pipeline workers (MonitorConfig::worker_threads), so matching
// parallelism comes from the monitors, not from the network layer — the
// classic "reactor + worker pools" split with no locks in the serving
// path.
//
// Planes:
//   ingest (config.port)   — handshake envelope, then raw session frames
//                            forward and CRC-framed control frames back
//                            (docs/SERVER.md has the wire grammar).
//   admin  (config.admin_port) — HTTP/1.0: GET /metrics (Prometheus),
//                            GET /healthz (JSON), POST /checkpoint.
//
// Shutdown: request_shutdown() is async-signal-safe (atomic flag + one
// byte down a self-pipe).  The loop then closes both listeners, drains
// every tenant pipeline, writes per-tenant checkpoints (when
// checkpoint_dir is set), closes connections, and returns from run().
// Tenants are retained after run() returns so embedders and tests can
// inspect final monitor state.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/listener.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "net/tenant.h"
#include "obs/metrics.h"

namespace ocep::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< ingest plane; 0 = ephemeral
  std::uint16_t admin_port = 0;  ///< admin plane; 0 = ephemeral
  /// Monitor / matcher / session configuration stamped onto every tenant.
  TenantConfig tenant;
  /// Directory for OCEPNTC1 tenant checkpoints.  Non-empty enables
  /// checkpoint-on-shutdown, the /checkpoint admin trigger, and
  /// restore-on-start (every *.ckp found is loaded before serving).
  std::string checkpoint_dir;
  /// Connections silent this long are closed (their tenant detaches).
  std::uint64_t idle_timeout_ms = 30000;
  /// Grace for a disconnected producer to come back before its tenant is
  /// finalized (degraded if events are missing).
  std::uint64_t detach_linger_ms = 2000;
  /// Governance: shed a tenant past this many received bytes (0 = off).
  std::uint64_t max_tenant_bytes = 0;
  /// Governance: shed a tenant past this many corrupt frames (0 = off).
  std::uint64_t max_corrupt_frames = 4096;
  std::size_t max_connections = 1024;
  std::size_t max_tenants = 256;
  /// Test/bench tap on every event released into a tenant monitor.
  ObserveHook observe_hook;
};

class Server {
 public:
  /// Binds both planes and restores any checkpoints; throws NetError when
  /// a port cannot be bound.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound ports (resolve ephemeral requests); valid after construction.
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::uint16_t admin_port() const noexcept;

  /// Serves until request_shutdown().  Call from exactly one thread.
  void run();

  /// Async-signal-safe stop: flips the flag and wakes the reactor.
  void request_shutdown() noexcept;

  /// Post-run inspection (single-threaded: only call after run() returns
  /// or before it starts).
  [[nodiscard]] Tenant* find_tenant(const std::string& name);
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }
  [[nodiscard]] obs::Registry& metrics() noexcept { return registry_; }

  /// Writes one checkpoint per tenant into checkpoint_dir (tmp + rename,
  /// so a crash mid-write never leaves a torn file).  Returns the number
  /// written; 0 when no directory is configured.
  std::size_t write_checkpoints();

 private:
  static constexpr std::uint64_t kTagWake = 0;
  static constexpr std::uint64_t kTagIngest = 1;
  static constexpr std::uint64_t kTagAdmin = 2;
  static constexpr std::uint64_t kFirstConnId = 16;

  [[nodiscard]] static std::uint64_t now_ms() noexcept;

  void restore_checkpoints();
  void accept_plane(Listener& listener, ConnKind kind);
  void on_conn_event(std::uint64_t id, std::uint32_t events);
  void on_readable(Conn& conn);
  void advance_handshake(Conn& conn);
  void handle_handshake(Conn& conn, const HandshakeRequest& request);
  void reject(Conn& conn, const std::string& message);
  void on_stream_bytes(Conn& conn);
  void pump_tenant(Conn& conn, Tenant& tenant);
  void send_fin(Conn& conn, Tenant& tenant);
  void advance_admin(Conn& conn);
  void respond_http(Conn& conn, int code, const std::string& content_type,
                    std::string body);
  [[nodiscard]] std::string healthz_json();
  void queue_or_close(Conn& conn, std::string bytes);
  void settle(std::uint64_t id);
  void want_epollout(Conn& conn, bool want);
  void close_conn(std::uint64_t id);
  void detach_tenant(Conn& conn);
  void sweep_timers();
  [[nodiscard]] int loop_timeout_ms() const;
  void graceful_shutdown();

  ServerConfig config_;
  Poller poller_;
  std::unique_ptr<Listener> ingest_;
  std::unique_ptr<Listener> admin_;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};
  bool running_ = false;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::uint64_t clock_ms_ = 0;

  obs::Registry registry_;

  /// Per-tenant registry instruments plus the last snapshot folded into
  /// them (session counters are cumulative; the registry wants deltas).
  struct Meters {
    obs::Counter* bytes = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* events = nullptr;
    obs::Counter* corrupt = nullptr;
    std::uint64_t last_bytes = 0;
    std::uint64_t last_frames = 0;
    std::uint64_t last_events = 0;
    std::uint64_t last_corrupt = 0;
  };
  void update_meters(Tenant& tenant);
  std::map<std::string, Meters> meters_;
};

}  // namespace ocep::net
