// Warm-standby daemon: the follower side of the replication protocol.
//
// A Standby listens where a primary's ingest plane would and accepts one
// replication connection per primary shard (the hello names the shard);
// each connection feeds a store::ReplicaLog under the same
// `<store_dir>/shard-N` layout the primary uses, so the directory a
// standby maintains IS a primary store — promotion is nothing more than
// constructing a normal Server over it, which replays the logs exactly
// like a crash restart.
//
// The admin plane serves GET /healthz (role "standby" plus per-shard
// replica positions), GET /metrics, and POST /promote.  Promotion (or
// SIGUSR1 via request_promote()) makes run() return kPromote after
// committing and closing every replica and releasing both listen ports;
// the caller then builds the real Server on the same config.
//
// Split-brain is the operator's problem by design: the standby never
// checks whether the old primary is really dead, it just starts serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/conn.h"
#include "net/listener.h"
#include "net/poller.h"
#include "obs/metrics.h"
#include "store/replication.h"

namespace ocep::net {

struct StandbyConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< replication listener (the ingest port)
  std::uint16_t admin_port = 0;  ///< /healthz, /metrics, /promote
  std::string store_dir;
};

enum class StandbyExit : std::uint8_t {
  kShutdown,
  kPromote,
};

class Standby {
 public:
  explicit Standby(StandbyConfig config);
  ~Standby();

  Standby(const Standby&) = delete;
  Standby& operator=(const Standby&) = delete;

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] std::uint16_t admin_port() const;

  /// Runs the event loop on the calling thread until shutdown or
  /// promotion.  On return both listen ports are released and every
  /// replica log is committed and closed.
  StandbyExit run();

  /// Async-signal-safe stop/promote requests (atomics + wake pipe).
  void request_shutdown();
  void request_promote();

  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }

 private:
  struct ReplConn {
    bool hello_done = false;
    std::uint64_t shard_index = 0;
    /// records_applied() at hello time: acks carry per-connection deltas.
    std::uint64_t records_base = 0;
  };

  void wake();
  void accept_repl();
  void accept_admin();
  void on_conn_event(std::uint64_t id, std::uint32_t events);
  void advance_repl(Conn& conn);
  void advance_admin(Conn& conn);
  bool dispatch_frame(Conn& conn, ReplConn& rc, store::ReplFrameType type,
                      const std::string& payload);
  void respond_http(Conn& conn, int code, const std::string& body);
  [[nodiscard]] std::string healthz_json() const;
  void close_conn(std::uint64_t id);
  void drop_shard(std::uint64_t shard_index);

  StandbyConfig config_;
  Poller poller_;
  std::unique_ptr<Listener> repl_listener_;
  std::unique_ptr<Listener> admin_listener_;
  int wake_read_ = -1;
  int wake_write_ = -1;

  std::uint64_t next_conn_id_;
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::map<std::uint64_t, ReplConn> repl_conns_;  ///< by conn id

  std::map<std::uint64_t, std::unique_ptr<store::ReplicaLog>> replicas_;
  std::map<std::uint64_t, std::uint64_t> shard_owner_;  ///< shard -> conn

  obs::Registry registry_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> promote_{false};
};

}  // namespace ocep::net
