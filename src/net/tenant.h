// One tenant = one event stream = one Monitor.
//
// A tenant is created by the first handshake naming it: its patterns are
// compiled into a fresh Monitor (running the parallel MatchPipeline when
// configured), and a SessionClient reassembles the tenant's lossy-frame
// stream into linearized events.  The tenant outlives its connection —
// a dropped TCP session leaves the ingestion state intact so a
// reconnecting producer resumes where it left off (position dedup plus
// snapshot resync make the replay exact) — and outlives its stream, so
// operators can inspect a completed or degraded monitor through the admin
// plane.
//
// Lifecycle:  streaming -> complete          (BYE seen, every event in)
//             streaming -> degraded          (disconnect linger expired;
//                                             the session free-runs and
//                                             flushes under shed policy)
//             streaming -> shed              (governance: byte budget or
//                                             corrupt-frame budget blown)
// Checkpoint/restore serializes the *pair* (monitor, session) so a
// restarted server resumes both the matching state and the ingest
// watermark; layout at the bottom of this header.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/monitor.h"
#include "poet/session.h"

namespace ocep::net {

enum class TenantState : std::uint8_t {
  kStreaming,
  kComplete,
  kDegraded,
  kShed,
};

[[nodiscard]] const char* to_string(TenantState state) noexcept;

struct TenantConfig {
  MonitorConfig monitor;
  /// Governance knobs applied to every registered pattern
  /// (docs/GOVERNANCE.md); defaults are the do-nothing configuration.
  MatcherConfig matcher;
  SessionConfig session;
  ClockStorage storage = ClockStorage::kDense;
  /// Ticks granted to a finalizing session before it is declared wedged
  /// (mirrors the chaos harness settle bound).
  std::uint64_t settle_ticks = 65536;
};

/// Test/bench hook: observes every event released into a tenant monitor,
/// on the serving thread.  `position` counts releases per tenant from 0.
using ObserveHook =
    std::function<void(std::string_view tenant, std::uint64_t position)>;

class Tenant {
 public:
  Tenant(std::string name, const TenantConfig& config,
         ObserveHook observe_hook = nullptr);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  /// Compiles and registers the pattern set, creating the monitor and the
  /// session.  Throws (ParseError/PatternError) on a bad pattern — the
  /// caller turns that into a handshake rejection.
  void register_patterns(const std::vector<std::string>& patterns);

  /// Restores monitor + session from a checkpoint previously written by
  /// checkpoint(); the checkpointed pattern set is authoritative (a later
  /// handshake naming different patterns is rejected against it).  Throws
  /// SerializationError on corruption.
  void restore(std::istream& in);

  /// Serializes patterns, monitor (OCEPCKP2), and session state, CRC
  /// framed.  Drains the pipeline first; safe mid-stream.
  void checkpoint(std::ostream& out);

  /// True once the monitor can legally checkpoint (trace table announced
  /// or restored).  A tenant that handshook but whose announcement frames
  /// are still in flight has nothing coherent to freeze: callers skip the
  /// checkpoint or retry the migration a beat later.
  [[nodiscard]] bool can_checkpoint() const noexcept {
    return monitor_ != nullptr && monitor_->traces_known();
  }

  /// Feeds received forward-stream bytes into the session.
  void feed(std::string_view bytes);
  /// Advances session time without bytes (resync backoff, stall aging).
  void tick();

  /// Resync requests the session issued since the last take; the server
  /// forwards them to the attached connection (or drops them when
  /// detached — the session's retry budget handles the loss).
  [[nodiscard]] std::vector<ResyncRequest> take_resyncs();

  /// Declares the stream finished (clean EOF or expired linger) and runs
  /// the session to a terminal state, shedding if it must.  Transitions
  /// to kComplete or kDegraded.
  void finalize();

  /// Governance ejection: finalize degraded and mark kShed.
  void shed(std::string reason);

  /// Checks for clean completion after a feed; transitions to kComplete /
  /// kDegraded when the session reached a terminal state.  Returns true
  /// on the transition edge (the server then sends FIN).
  [[nodiscard]] bool maybe_finish();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TenantState state() const noexcept { return state_; }
  [[nodiscard]] bool streaming() const noexcept {
    return state_ == TenantState::kStreaming;
  }
  [[nodiscard]] const std::string& shed_reason() const noexcept {
    return shed_reason_;
  }
  [[nodiscard]] Monitor& monitor() noexcept { return *monitor_; }
  [[nodiscard]] SessionClient& session() noexcept { return *session_; }
  [[nodiscard]] const std::vector<std::string>& patterns() const noexcept {
    return patterns_;
  }
  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] std::uint64_t events_released() const noexcept {
    return released_;
  }
  [[nodiscard]] bool degraded() const;

  /// Reinstates the cumulative received-byte count after a live shard
  /// migration: the OCEPNTC1 image deliberately omits it (a restart
  /// resets governance budgets), but an in-flight hop must not.
  void restore_bytes_in(std::uint64_t bytes) noexcept { bytes_in_ = bytes; }

  /// Attaches a history spill sink (core/span_sink.h), applied to the
  /// monitor as soon as it exists.  Call right after construction —
  /// before register_patterns()/restore() — so a restored checkpoint's
  /// spilled-span metadata can fault through it.  The sink must outlive
  /// the tenant; nullptr detaches.
  void set_span_sink(SpanSink* sink);

  // Attachment bookkeeping (owned by the server's policy).
  std::uint64_t conn_id = 0;          ///< 0 = detached
  std::uint64_t detach_deadline_ms = 0;  ///< linger expiry when detached
  std::uint64_t migrations = 0;  ///< live shard hops this tenant survived

 private:
  /// Forwards releases to the monitor, counting them and invoking the
  /// observe hook; keeps the hook out of the session/monitor layers.
  class TapSink final : public EventSink {
   public:
    explicit TapSink(Tenant& owner) : owner_(owner) {}
    void on_traces(const std::vector<Symbol>& names) override;
    void on_event(const Event& event, const VectorClock& clock) override;

   private:
    Tenant& owner_;
  };

  /// Collects session resync requests for the server to forward.
  class QueuedTransport final : public ResyncTransport {
   public:
    void request_resync(const ResyncRequest& request) override {
      pending.push_back(request);
    }
    std::vector<ResyncRequest> pending;
  };

  void build(const std::vector<std::string>& patterns);

  std::string name_;
  TenantConfig config_;
  ObserveHook observe_hook_;
  SpanSink* span_sink_ = nullptr;
  TenantState state_ = TenantState::kStreaming;
  std::string shed_reason_;
  std::vector<std::string> patterns_;
  std::unique_ptr<StringPool> pool_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<TapSink> tap_;
  std::unique_ptr<QueuedTransport> transport_;
  std::unique_ptr<SessionClient> session_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t released_ = 0;
};

/// Parsed tenant checkpoint:  magic "OCEPNTC1" | u32le crc32c(body) |
/// body, where body = varint pattern count, each pattern string, varint
/// monitor blob length + blob (OCEPCKP2 inside), varint session blob
/// length + blob.  Exposed so tests and tools can split the sections —
/// the monitor blob is the byte-identity surface across resumed runs
/// (session counters legitimately differ once a resync replayed data).
struct TenantCheckpoint {
  std::vector<std::string> patterns;
  std::string monitor_blob;
  std::string session_blob;
};

[[nodiscard]] TenantCheckpoint read_tenant_checkpoint(std::istream& in);

}  // namespace ocep::net
