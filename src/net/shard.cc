#include "net/shard.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/durable.h"
#include "common/error.h"

namespace ocep::net {
namespace {

namespace fs = std::filesystem;

/// Tenant names become checkpoint filenames and Prometheus label values;
/// a conservative charset keeps both planes trivially safe.
bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > 128) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return name != "." && name != "..";
}

std::string tenant_label(const std::string& name) {
  return "tenant=\"" + name + "\"";
}

/// Each shard owns one log directory under the shared store root.
std::string store_shard_dir(const std::string& base, std::size_t index) {
  return base + "/shard-" + std::to_string(index);
}

}  // namespace

Shard::Shard(const ServerConfig& config, std::size_t index,
             std::size_t shard_count, std::uint16_t ingest_port,
             bool reuseport, std::atomic<std::size_t>& tenant_total,
             PlacementMap& placement)
    : config_(config),
      index_(index),
      shard_count_(shard_count),
      tenant_total_(tenant_total),
      placement_(placement) {
  ingest_ = std::make_unique<Listener>(config_.host, ingest_port, reuseport);
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw NetError("pipe2(wake): " + std::string(std::strerror(errno)));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  poller_.add(wake_read_, EPOLLIN, kTagWake);
  poller_.add(ingest_->fd(), EPOLLIN, kTagIngest);
  clock_ms_ = now_ms();
  if (!config_.store_dir.empty()) {
    // Corruption that is not a torn tail fails construction loudly — an
    // operator must intervene rather than serve from a silently partial
    // store (ocep_inspect --store diagnoses the damage).
    open_store();
    restore_from_store();
  }
  // With the store on this is the one-time upgrade path: any *.ckp files
  // are loaded for tenants the log does not know and re-based into it.
  restore_checkpoints();
  next_flush_ms_ = clock_ms_ + flush_interval_ms();
  if (store_ != nullptr && !config_.replicate_host.empty()) {
    replicator_ = std::make_unique<Replicator>(
        config_.replicate_host, config_.replicate_port, index_, shard_count_,
        store_->log(), poller_, kTagRepl, registry_);
  }
}

Shard::~Shard() {
  if (wake_read_ >= 0) {
    ::close(wake_read_);
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
  }
}

std::uint64_t Shard::now_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000U +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000U;
}

void Shard::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'q';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

void Shard::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_tasks_.push_back(std::move(task));
  }
  mail_pending_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'm';
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

void Shard::adopt(ConnHandoff handoff) {
  {
    const std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_handoffs_.push_back(std::move(handoff));
  }
  mail_pending_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'a';
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

void Shard::adopt_tenant(TenantHandoff handoff) {
  {
    const std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_tenant_handoffs_.push_back(std::move(handoff));
  }
  mail_pending_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 't';
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
}

void Shard::drain_stranded() { drain_mailbox(); }

Tenant* Shard::find_tenant(const std::string& name) {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void Shard::restore_checkpoints() {
  if (config_.checkpoint_dir.empty()) {
    return;
  }
  std::error_code ec;
  if (!fs::is_directory(config_.checkpoint_dir, ec)) {
    return;
  }
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.checkpoint_dir, ec)) {
    if (ec) {
      break;
    }
    if (!entry.is_regular_file() || entry.path().extension() != ".ckp") {
      continue;
    }
    const std::string name = entry.path().stem().string();
    if (!valid_tenant_name(name) || tenants_.contains(name)) {
      continue;
    }
    // The checkpoint directory is shared across shards; each shard
    // restores only its placement partition — the affinity hash unless a
    // persisted override (live migration, least-loaded placement) says
    // otherwise — so a restart with a different shard count
    // redistributes tenants without coordination.
    if (placement_.owner_of(name) != index_) {
      continue;
    }
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      auto tenant =
          std::make_unique<Tenant>(name, config_.tenant, config_.observe_hook);
      if (SpanSink* sink = span_sink_for(name)) {
        tenant->set_span_sink(sink);
      }
      tenant->restore(in);
      // Restored tenants start detached; a producer gets one linger window
      // to reconnect before the stream is finalized as degraded.
      tenant->detach_deadline_ms = clock_ms_ + config_.detach_linger_ms;
      registry_.counter("net.tenants_restored").add(1);
      tenant_total_.fetch_add(1, std::memory_order_relaxed);
      Tenant& ref = *tenants_.emplace(name, std::move(tenant)).first->second;
      placement_.set_resident(name, index_);
      if (store_ != nullptr) {
        // Upgrade: fold the legacy checkpoint into the log so the next
        // restart never needs the .ckp file again.
        store_rebase(ref, 1);
        durable_[name].last_active_ms = clock_ms_;
      }
    } catch (const Error&) {
      registry_.counter("net.restore_errors").add(1);
    }
  }
}

void Shard::open_store() {
  store::LogConfig log_config;
  log_config.dir = store_shard_dir(config_.store_dir, index_);
  log_config.segment_bytes = config_.store_segment_bytes;
  log_config.crash_hook = config_.store_crash_hook;
  store_ = std::make_unique<store::TenantStore>(std::move(log_config));
  // Span tier: the pool needs synchronous monitors (a worker thread
  // spilling through a shard-owned sink would race the reactor), so a
  // pipeline-mode daemon keeps plain eviction even with a pool budget.
  if (config_.pool_bytes != 0 && config_.tenant.monitor.worker_threads == 0) {
    pool_ = std::make_unique<store::BufferPool>(config_.pool_bytes);
  }
  if (config_.compact_ratio > 0.0) {
    store::CompactorConfig compactor_config;
    compactor_config.dead_ratio = config_.compact_ratio;
    compactor_ = std::make_unique<store::Compactor>(*store_, compactor_config);
    compactor_->set_rebase_fn([this](const std::string& name) {
      Tenant* tenant = find_tenant(name);
      if (tenant == nullptr || !tenant->can_checkpoint()) {
        return true;  // gone (spilled, migrated): drop the request
      }
      const bool ok = store_try([&] {
        std::ostringstream blob;
        tenant->checkpoint(blob);
        store_->append_base(name, std::move(blob).str());
      });
      if (ok) {
        durable_[name].bytes_since_base = 0;
        store_work_pending_ = true;
      }
      return ok;
    });
  }
}

/// Routes one tenant's matcher spills and faults to the shard's store +
/// pool.  Lives next to the tenant (span_sinks_), detached only when the
/// tenant leaves the shard for good.
class Shard::StoreSpanSink final : public SpanSink {
 public:
  StoreSpanSink(Shard& shard, std::string tenant)
      : shard_(shard), tenant_(std::move(tenant)) {}

  bool spill(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
             std::uint64_t seq,
             std::span<const HistoryEntry> entries) override {
    if (shard_.store_ == nullptr) {
      return false;
    }
    store::SpanPayload payload;
    payload.key = store::SpanKey{pattern, leaf, trace, seq};
    payload.entries.reserve(entries.size());
    for (const HistoryEntry& entry : entries) {
      payload.entries.emplace_back(entry.index, entry.comm_before);
    }
    // Declining on an append fault keeps the entries in RAM (plain
    // eviction) — never tell the matcher a span is durable when it is
    // not.  Durability proper arrives with the next group commit; a
    // crash before it replays the deltas, and the replay's re-spill is
    // idempotent (last-wins keys).
    const bool ok = shard_.store_try(
        [&] { shard_.store_->append_span(tenant_, payload); });
    if (ok) {
      shard_.store_work_pending_ = true;
    }
    return ok;
  }

  bool fault(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
             std::uint64_t seq, std::vector<HistoryEntry>& out) override {
    if (shard_.pool_ == nullptr || shard_.store_ == nullptr) {
      return false;
    }
    const store::SpanKey key{pattern, leaf, trace, seq};
    const store::SpanPayload* span =
        shard_.pool_->acquire(tenant_, key, *shard_.store_);
    if (span == nullptr) {
      return false;
    }
    out.clear();
    out.reserve(span->entries.size());
    for (const auto& [index, comm_before] : span->entries) {
      out.push_back(HistoryEntry{static_cast<EventIndex>(index),
                                 static_cast<std::uint32_t>(comm_before)});
    }
    shard_.pool_->unpin(tenant_, key);
    return true;
  }

  void release(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
               std::uint64_t seq) override {
    const store::SpanKey key{pattern, leaf, trace, seq};
    if (shard_.pool_ != nullptr) {
      shard_.pool_->invalidate(tenant_, key);
    }
    if (shard_.store_ != nullptr) {
      shard_.store_->release_span(tenant_, key);
    }
  }

 private:
  Shard& shard_;
  std::string tenant_;
};

SpanSink* Shard::span_sink_for(const std::string& name) {
  if (store_ == nullptr || pool_ == nullptr) {
    return nullptr;
  }
  auto it = span_sinks_.find(name);
  if (it == span_sinks_.end()) {
    it = span_sinks_
             .emplace(name, std::make_unique<StoreSpanSink>(*this, name))
             .first;
  }
  return it->second.get();
}

void Shard::drop_span_sink(const std::string& name) {
  span_sinks_.erase(name);
  if (pool_ != nullptr) {
    pool_->invalidate_tenant(name);
  }
}

void Shard::reconcile_spans(Tenant& tenant) {
  if (store_ == nullptr || pool_ == nullptr) {
    return;
  }
  std::vector<store::SpanKey> live;
  tenant.monitor().for_each_spilled(
      [&](std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
          std::uint64_t seq) {
        live.push_back(store::SpanKey{pattern, leaf, trace, seq});
      });
  store_try([&] { store_->retain_spans(tenant.name(), live); });
}

std::unique_ptr<Tenant> Shard::rebuild_tenant(const std::string& name,
                                              const store::TenantImage& image) {
  auto tenant =
      std::make_unique<Tenant>(name, config_.tenant, config_.observe_hook);
  if (SpanSink* sink = span_sink_for(name)) {
    // Attached before restore: the base image's spilled-span metadata
    // must be able to fault, and the delta replay's re-evictions re-spill
    // through the same sink (idempotently — the seqs repeat).
    tenant->set_span_sink(sink);
  }
  if (image.has_base) {
    std::istringstream in(image.base);
    tenant->restore(in);
  } else {
    tenant->register_patterns(image.patterns);
  }
  // Replay the captured input; the session's position dedup makes bytes
  // the base already covered idempotent, so base + deltas converge on
  // the same state the live tenant held.
  for (const std::string& delta : image.deltas) {
    if (!tenant->streaming()) {
      break;
    }
    tenant->feed(delta);
  }
  tenant->monitor().drain();
  (void)tenant->maybe_finish();
  // The log may hold spans the rebuilt matcher no longer references (it
  // released them in RAM after the base was cut, then the crash lost the
  // re-spilling deltas); kill those now or nothing ever will.
  reconcile_spans(*tenant);
  return tenant;
}

void Shard::restore_from_store() {
  struct Candidate {
    store::TenantImage image;
    bool foreign = false;  ///< found in a sibling shard's log
  };
  std::map<std::string, Candidate> best;
  for (const auto& [name, image] : store_->images()) {
    if (!valid_tenant_name(name)) {
      continue;
    }
    if (placement_.owner_of(name) != index_) {
      store_foreign_.push_back(name);  // settle_store() disowns it later
      continue;
    }
    best[name] = Candidate{image, false};
  }
  // A restart with a different shard count (or fresh placement overrides)
  // can leave our tenants in a sibling's log; scan the other shard
  // directories read-only and take the highest-epoch copy.  Ties go to
  // our own log so a tenant that never moved is not pointlessly re-based.
  std::error_code ec;
  if (fs::is_directory(config_.store_dir, ec)) {
    const std::string own_dir = store_shard_dir(config_.store_dir, index_);
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config_.store_dir, ec)) {
      if (ec || !entry.is_directory()) {
        continue;
      }
      const std::string dir = entry.path().string();
      if (dir == own_dir ||
          entry.path().filename().string().rfind("shard-", 0) != 0) {
        continue;
      }
      try {
        for (auto& [name, image] : store::TenantStore::read_images(dir)) {
          if (!valid_tenant_name(name) || placement_.owner_of(name) != index_) {
            continue;
          }
          const auto it = best.find(name);
          if (it == best.end() || image.epoch > it->second.image.epoch) {
            best[name] = Candidate{std::move(image), true};
          }
        }
      } catch (const Error&) {
        registry_.counter("net.restore_errors").add(1);
      }
    }
  }
  for (auto& [name, candidate] : best) {
    try {
      auto tenant = rebuild_tenant(name, candidate.image);
      Tenant& ref = *tenant;
      if (ref.streaming()) {
        ref.detach_deadline_ms = clock_ms_ + config_.detach_linger_ms;
      }
      registry_.counter("net.tenants_restored").add(1);
      tenant_total_.fetch_add(1, std::memory_order_relaxed);
      tenants_.emplace(name, std::move(tenant));
      placement_.set_resident(name, index_);
      Durable& durable = durable_[name];
      durable.last_active_ms = clock_ms_;
      for (const std::string& delta : candidate.image.deltas) {
        durable.bytes_since_base += delta.size();
      }
      if (candidate.foreign) {
        // Claim the tenant in our own log at a higher epoch; the sibling
        // keeps its stale copy until settle_store() tombstones it.
        if (ref.can_checkpoint()) {
          store_rebase(ref, candidate.image.epoch + 1);
          durable.bytes_since_base = 0;
        } else {
          store_try([&] {
            store_->append_genesis(name, ref.patterns(),
                                   candidate.image.epoch + 1);
            for (const std::string& delta : candidate.image.deltas) {
              store_->append_delta(name, delta);
            }
          });
        }
      }
    } catch (const Error&) {
      registry_.counter("net.restore_errors").add(1);
    }
  }
  store_->drop_images();
  if (store_->dirty()) {
    store_try([&] { store_->sync(); });
  }
  fold_store_stats();
}

void Shard::settle_store() {
  if (store_ == nullptr || store_foreign_.empty()) {
    return;
  }
  for (const std::string& name : store_foreign_) {
    store_try([&] { store_->append_tombstone(name); });
  }
  store_foreign_.clear();
  if (store_->dirty()) {
    store_try([&] { store_->sync(); });
  }
  fold_store_stats();
}

void Shard::run() {
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = poller_.wait(events, loop_timeout_ms());
    clock_ms_ = now_ms();
    drain_mailbox();
    for (std::size_t i = 0; i < n; ++i) {
      const Poller::Event& ev = events[i];
      switch (ev.tag) {
        case kTagWake: {
          char sink[64];
          while (::read(wake_read_, sink, sizeof(sink)) > 0) {
          }
          break;
        }
        case kTagIngest:
          accept_ingest();
          break;
        case kTagRepl:
          if (replicator_ != nullptr) {
            replicator_->on_event(ev.events);
          }
          break;
        default:
          on_conn_event(ev.tag, ev.events);
          break;
      }
    }
    sweep_timers();
    if (replicator_ != nullptr) {
      replicator_->tick(clock_ms_);
    }
    if (store_ != nullptr && clock_ms_ >= next_flush_ms_) {
      if (flush_store()) {
        flush_backoff_ms_ = 0;
        store_degraded_ = false;
        next_flush_ms_ = clock_ms_ + flush_interval_ms();
        if (replicator_ != nullptr) {
          replicator_->pump();
        }
      } else {
        // An I/O fault (ENOSPC, EIO) must not kill serving: stay up on
        // the in-RAM state and retry the flush with capped backoff.
        store_degraded_ = true;
        flush_backoff_ms_ =
            flush_backoff_ms_ == 0
                ? flush_interval_ms() * 2
                : std::min<std::uint64_t>(flush_backoff_ms_ * 2, 5000);
        next_flush_ms_ = clock_ms_ + flush_backoff_ms_;
      }
    }
    if (compactor_ != nullptr && !store_degraded_ &&
        !stop_.load(std::memory_order_acquire)) {
      // One bounded quantum between poll waits; anything it appended
      // rides the next group commit (store_work_pending_ keeps the poll
      // timeout inside the flush window).
      if (compactor_->tick()) {
        store_work_pending_ = true;
      }
    }
  }
  graceful_shutdown();
  // Late mail (an admin scrape racing shutdown, a connection migrating
  // from a sibling that stopped a beat later) still gets serviced once so
  // no waiter is abandoned; adopted fds just close.
  drain_mailbox();
}

void Shard::drain_mailbox() {
  if (!mail_pending_.exchange(false, std::memory_order_acquire)) {
    return;
  }
  std::vector<std::function<void()>> tasks;
  std::vector<ConnHandoff> handoffs;
  std::vector<TenantHandoff> tenant_handoffs;
  {
    const std::lock_guard<std::mutex> lock(mail_mutex_);
    tasks.swap(mail_tasks_);
    handoffs.swap(mail_handoffs_);
    tenant_handoffs.swap(mail_tenant_handoffs_);
  }
  for (std::function<void()>& task : tasks) {
    task();
  }
  // Tenants before connections: a connection handed off alongside its
  // tenant's migration then finds the tenant already adopted.
  for (TenantHandoff& handoff : tenant_handoffs) {
    adopt_tenant_now(std::move(handoff));
  }
  for (ConnHandoff& handoff : handoffs) {
    adopt_now(std::move(handoff));
  }
}

int Shard::loop_timeout_ms() const {
  bool attached_streaming = false;
  bool pending_deadline = false;
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant->streaming()) {
      continue;
    }
    if (tenant->conn_id != 0) {
      attached_streaming = true;
    } else if (tenant->detach_deadline_ms != 0) {
      pending_deadline = true;
    }
  }
  int timeout = 500;
  if (attached_streaming) {
    timeout = 5;  // drive session ticks (resync grace/backoff are tick-based)
  } else if (pending_deadline ||
             (config_.idle_timeout_ms != 0 && !conns_.empty())) {
    timeout = 50;
  }
  if (store_ != nullptr && store_work_pending_) {
    // Unflushed input bytes bound the wait by the group-commit window.
    const std::uint64_t interval = flush_interval_ms();
    if (interval < static_cast<std::uint64_t>(timeout)) {
      timeout = static_cast<int>(interval);
    }
  }
  if (replicator_ != nullptr) {
    timeout = std::min(timeout, replicator_->timeout_bound_ms(clock_ms_));
  }
  if (compactor_ != nullptr && compactor_->backlog() != 0) {
    // Compaction progresses one tick per loop iteration; do not let an
    // idle shard sleep a whole poll interval between quanta.
    timeout = std::min(timeout, 5);
  }
  return timeout;
}

void Shard::accept_ingest() {
  ingest_->accept_ready([this](OwnedFd fd) {
    if (conns_.size() >= config_.max_connections) {
      registry_.counter("net.accept_overflow").add(1);
      return;  // fd closes on scope exit; the peer sees a reset
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(fd), id, ConnKind::kIngest);
    conn->last_active_ms = clock_ms_;
    poller_.add(conn->fd(), EPOLLIN, id);
    conns_.emplace(id, std::move(conn));
    registry_.counter("net.accepted", "plane=\"ingest\"").add(1);
    registry_.gauge("net.connections").add(1);
  });
}

void Shard::adopt_now(ConnHandoff handoff) {
  if (stop_.load(std::memory_order_acquire) || !handoff.fd.valid()) {
    return;  // shutting down: the orphaned fd closes, the peer sees a reset
  }
  const std::uint64_t id = next_conn_id_++;
  auto conn =
      std::make_unique<Conn>(std::move(handoff.fd), id, ConnKind::kIngest);
  conn->last_active_ms = clock_ms_;
  conn->seed_inbound(handoff.leftover);
  // EPOLL_CTL_ADD on an already-readable fd reports the current state as
  // a fresh edge, so bytes that raced the migration are not lost.
  poller_.add(conn->fd(), EPOLLIN, id);
  Conn& ref = *conns_.emplace(id, std::move(conn)).first->second;
  registry_.counter("net.conns_adopted").add(1);
  registry_.gauge("net.connections").add(1);
  handle_handshake(ref, handoff.request);
  settle(id);
}

void Shard::migrate(Conn& conn, const HandshakeRequest& request,
                    std::size_t target) {
  ConnHandoff handoff;
  handoff.request = request;
  handoff.leftover = std::string(conn.pending());
  // The fd must leave this shard's epoll interest set before the owner
  // adds it, or both reactors could race on the same readiness edge.
  poller_.del(conn.fd());
  handoff.fd = conn.take_fd();  // conn is kClosed now; settle() reaps it
  registry_.counter("net.conn_migrations").add(1);
  peers_[target]->adopt(std::move(handoff));
}

bool Shard::migrate_tenant(const std::string& name, std::size_t target) {
  if (peers_.empty() || target == index_ || target >= peers_.size() ||
      stop_.load(std::memory_order_acquire)) {
    // Refusing while stopping matters for correctness: the target's
    // reactor may already be past its final mailbox drain, and a handoff
    // posted after that would strand the tenant.
    return false;
  }
  Tenant* tenant = find_tenant(name);
  if (tenant == nullptr || !tenant->can_checkpoint()) {
    // Absent, or handshook with the trace announcement still in flight —
    // nothing coherent to freeze yet.  Callers retry a beat later.
    return false;
  }
  const MigrationHook& hook = config_.migration_hook;
  if (hook && hook(MigrationPhase::kFreeze, name)) {
    registry_.counter("net.tenant_migration_failures").add(1);
    return false;
  }
  // From here handshakes route to the destination; until the adoption
  // lands they are refused with a retryable "migrating" message.
  placement_.begin_migration(name, target);
  TenantHandoff handoff;
  handoff.name = name;
  handoff.from_shard = index_;
  handoff.migrations = tenant->migrations + 1;
  if (pool_ != nullptr) {
    // Spilled spans live in this shard's log and the destination appends
    // to its own: fault everything back so the frozen image is
    // self-contained (the tombstone below reclaims the log copies).
    tenant->monitor().fault_all_spans();
  }
  std::ostringstream blob;
  try {
    // Freeze: checkpoint() drains the pipeline at a frame boundary, so
    // the blob is the same OCEPNTC1 image a restart would read.
    tenant->checkpoint(blob);
  } catch (const Error&) {
    placement_.cancel_migration(name, index_);
    registry_.counter("net.tenant_migration_failures").add(1);
    return false;
  }
  handoff.blob = std::move(blob).str();
  if (hook && hook(MigrationPhase::kTransfer, name)) {
    placement_.cancel_migration(name, index_);
    registry_.counter("net.tenant_migration_failures").add(1);
    return false;
  }
  handoff.bytes_in = tenant->bytes_in();
  handoff.detach_deadline_ms = tenant->detach_deadline_ms;
  handoff.store_epoch = store_ != nullptr ? store_->epoch_of(name) : 0;
  if (tenant->conn_id != 0) {
    const auto it = conns_.find(tenant->conn_id);
    if (it != conns_.end() && it->second->state() == ConnState::kStreaming) {
      // The socket travels with the tenant: capture unparsed inbound
      // bytes and unflushed outbound frames, deregister, release the fd.
      Conn& conn = *it->second;
      handoff.leftover = std::string(conn.pending());
      handoff.outbound = conn.take_pending_writes();
      poller_.del(conn.fd());
      handoff.fd = conn.take_fd();
      conn.tenant.clear();  // the husk must not detach the departed tenant
      close_conn(conn.id());
    } else if (it != conns_.end()) {
      // A closing connection (FIN already queued) stays to finish its
      // flush; unbind it so its close cannot touch the departed tenant.
      it->second->tenant.clear();
    }
    tenant->conn_id = 0;
  }
  update_meters(*tenant);
  meters_.erase(name);  // a return hop re-seeds at the restored values
  tenants_.erase(name);
  drop_span_sink(name);
  if (compactor_ != nullptr) {
    // The tombstone below retires this tenant's spans; an in-flight
    // rewrite plan may have just gone dead, so re-plan from scratch.
    compactor_->quiesce();
  }
  if (store_ != nullptr) {
    // The handoff blob already covers any captured-but-unflushed input,
    // so the pending bytes can go; the tombstone keeps this log from
    // resurrecting its stale copy on the next restart.
    durable_.erase(name);
    store_try([&] { store_->append_tombstone(name); });
    store_work_pending_ = true;
  }
  registry_.counter("net.tenant_migrations").add(1);
  peers_[target]->adopt_tenant(std::move(handoff));
  return true;
}

void Shard::adopt_tenant_now(TenantHandoff handoff) {
  const MigrationHook& hook = config_.migration_hook;
  if (!handoff.bounced && hook && hook(MigrationPhase::kAdopt, handoff.name)) {
    registry_.counter("net.tenant_migration_failures").add(1);
    bounce_or_drop(std::move(handoff));
    return;
  }
  auto tenant = std::make_unique<Tenant>(handoff.name, config_.tenant,
                                         config_.observe_hook);
  if (SpanSink* sink = span_sink_for(handoff.name)) {
    // The handoff blob is self-contained (the source faulted every span
    // back before freezing), but the adopted tenant spills here from now
    // on.
    tenant->set_span_sink(sink);
  }
  try {
    std::istringstream in(handoff.blob);
    tenant->restore(in);
  } catch (const Error&) {
    registry_.counter("net.tenant_migration_failures").add(1);
    bounce_or_drop(std::move(handoff));
    return;
  }
  tenant->restore_bytes_in(handoff.bytes_in);
  tenant->migrations = handoff.migrations;
  const bool stopping = stop_.load(std::memory_order_acquire);
  if (stopping) {
    // This reactor already checkpointed and will not run again; write
    // the image to disk directly so the shutdown still captures it, and
    // keep the tenant for post-run inspection.  The fd just closes (the
    // producer reconnects to the restarted daemon).
    if (store_ != nullptr) {
      store_try([&] {
        store_->append_base(handoff.name, handoff.blob,
                            handoff.store_epoch + 1);
        store_->sync();
      });
    } else {
      write_blob_checkpoint(handoff.name, handoff.blob);
    }
  }
  Tenant& ref = *tenants_.insert_or_assign(handoff.name, std::move(tenant))
                     .first->second;
  seed_meters(ref);
  if (store_ != nullptr) {
    spilled_.erase(handoff.name);
    if (!stopping) {
      // Adopt at source epoch + 1 so a cross-log recovery scan prefers
      // this copy over the source's (now tombstoned) records.
      store_try([&] {
        store_->append_base(handoff.name, handoff.blob,
                            handoff.store_epoch + 1);
      });
      store_work_pending_ = true;
    }
    Durable& durable = durable_[handoff.name];
    durable.pending.clear();
    durable.bytes_since_base = 0;
    durable.last_active_ms = clock_ms_;
  }
  placement_.finish_migration(handoff.name, index_);
  registry_
      .counter(handoff.bounced ? "net.tenant_bounced" : "net.tenant_adoptions")
      .add(1);
  if (stopping || !handoff.fd.valid()) {
    ref.conn_id = 0;
    if (!stopping && ref.streaming()) {
      ref.detach_deadline_ms = handoff.detach_deadline_ms != 0
                                   ? handoff.detach_deadline_ms
                                   : clock_ms_ + config_.detach_linger_ms;
    }
    return;
  }
  // Re-hang the live socket under a fresh Conn already in streaming
  // state: inbound bytes the source had buffered are seeded ahead of the
  // socket, unflushed outbound frames are re-queued, and EPOLL_CTL_ADD
  // reports any readiness that raced the hop as a fresh edge — no byte
  // is lost in either direction.
  const std::uint64_t id = next_conn_id_++;
  auto conn =
      std::make_unique<Conn>(std::move(handoff.fd), id, ConnKind::kIngest);
  conn->last_active_ms = clock_ms_;
  conn->tenant = handoff.name;
  conn->set_state(ConnState::kStreaming);
  conn->seed_inbound(handoff.leftover);
  if (!conn->queue_write(std::move(handoff.outbound))) {
    // Unreachable (the bytes came from a queue under the same bound),
    // but keep the overflow contract: drop the connection, never the
    // tenant.
    registry_.counter("net.write_overflow").add(1);
    ref.conn_id = 0;
    ref.detach_deadline_ms = clock_ms_ + config_.detach_linger_ms;
    return;
  }
  poller_.add(conn->fd(), EPOLLIN, id);
  Conn& cref = *conns_.emplace(id, std::move(conn)).first->second;
  registry_.gauge("net.connections").add(1);
  ref.conn_id = id;
  ref.detach_deadline_ms = 0;
  on_stream_bytes(cref);  // seeded bytes, pending resyncs, FIN checks
  settle(id);
}

void Shard::bounce_or_drop(TenantHandoff handoff) {
  if (!handoff.bounced && handoff.from_shard < peers_.size() &&
      peers_[handoff.from_shard] != this) {
    handoff.bounced = true;
    peers_[handoff.from_shard]->adopt_tenant(std::move(handoff));
    return;
  }
  // No way home (the bounce itself failed): preserve the image on disk
  // and surface the loss — a tenant must never vanish silently.  Routing
  // settles here so a reconnecting producer is not refused forever.
  if (store_ != nullptr) {
    store_try([&] {
      store_->append_base(handoff.name, handoff.blob, handoff.store_epoch + 1);
      store_->sync();
    });
  } else {
    write_blob_checkpoint(handoff.name, handoff.blob);
  }
  placement_.finish_migration(handoff.name, index_);
  registry_.counter("net.tenant_migration_dropped").add(1);
}

void Shard::write_blob_checkpoint(const std::string& name,
                                  const std::string& blob) {
  if (config_.checkpoint_dir.empty()) {
    return;
  }
  std::error_code ec;
  fs::create_directories(config_.checkpoint_dir, ec);
  const fs::path final_path =
      fs::path(config_.checkpoint_dir) / (name + ".ckp");
  if (!write_file_durable(final_path.string(), blob)) {
    registry_.counter("net.checkpoint_errors").add(1);
    return;
  }
  registry_.counter("net.checkpoints_written").add(1);
}

void Shard::on_conn_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;  // closed earlier in this batch
  }
  Conn& conn = *it->second;
  conn.last_active_ms = clock_ms_;
  if ((events & EPOLLIN) != 0 || (events & (EPOLLHUP | EPOLLERR)) != 0) {
    on_readable(conn);
  }
  settle(id);
}

void Shard::on_readable(Conn& conn) {
  const IoStatus status = conn.fill();
  switch (conn.state()) {
    case ConnState::kHandshake:
      advance_handshake(conn);
      break;
    case ConnState::kStreaming:
      on_stream_bytes(conn);
      break;
    case ConnState::kRequest:
      conn.set_state(ConnState::kClosed);  // HTTP has no ingest-plane home
      break;
    case ConnState::kClosing:
    case ConnState::kClosed:
      conn.consume(conn.pending().size());  // discard: peer is done
      break;
  }
  if (status == IoStatus::kEof) {
    // Half-close is honoured: flush queued control frames (the FIN a
    // just-finished stream is owed), then close.
    if (conn.state() == ConnState::kStreaming ||
        conn.state() == ConnState::kHandshake) {
      detach_tenant(conn);
    }
    if (conn.state() != ConnState::kClosed) {
      conn.set_state(ConnState::kClosing);
    }
  } else if (status == IoStatus::kError) {
    detach_tenant(conn);
    conn.set_state(ConnState::kClosed);
  }
}

void Shard::advance_handshake(Conn& conn) {
  std::size_t pos = conn.rpos();
  HandshakeRequest request;
  std::string error;
  const ParseStatus status = parse_handshake(conn.rbuf(), pos, request, error);
  switch (status) {
    case ParseStatus::kNeedMore:
      if (conn.pending().size() > Conn::kMaxPrefaceBytes) {
        conn.set_state(ConnState::kClosed);  // oversized, untrusted
      }
      return;
    case ParseStatus::kError:
      registry_.counter("net.handshake_errors").add(1);
      conn.set_state(ConnState::kClosed);
      return;
    case ParseStatus::kDone:
      break;
  }
  conn.consume(pos - conn.rpos());
  handle_handshake(conn, request);
}

void Shard::handle_handshake(Conn& conn, const HandshakeRequest& request) {
  if (!valid_tenant_name(request.tenant)) {
    reject(conn, "invalid tenant name");
    return;
  }
  // Route by placement: the affinity hash unless an override (live
  // migration, least-loaded placement) redirects.  With rebalancing on,
  // a never-seen tenant is assigned the least-loaded shard right here,
  // so the connection hops at most once.
  const std::size_t owner = config_.rebalance
                                ? placement_.route_or_assign(request.tenant)
                                : placement_.owner_of(request.tenant);
  if (owner != index_ && !peers_.empty()) {
    migrate(conn, request, owner);
    return;
  }
  if (placement_.is_migrating(request.tenant)) {
    // Frozen on its source shard, not yet adopted here.  Retryable, like
    // racing a still-attached predecessor connection.
    reject(conn, "tenant is migrating; retry");
    return;
  }
  Tenant* tenant = find_tenant(request.tenant);
  if (tenant == nullptr && store_ != nullptr && !spilled_.empty()) {
    const auto it = spilled_.find(request.tenant);
    if (it != spilled_.end()) {
      if (it->second.state == TenantState::kShed) {
        // No need to reload the image just to refuse the producer.
        reject(conn, "tenant was shed: " + it->second.shed_reason);
        return;
      }
      if (clock_ms_ < it->second.retry_at_ms) {
        // A recent reload already failed; refuse without touching the
        // (possibly faulting) disk until the backoff window passes.
        reject(conn, "tenant reload backing off; retry");
        return;
      }
      tenant = unspill(request.tenant);
      if (tenant == nullptr) {
        Spilled& spilled = it->second;
        spilled.retry_backoff_ms =
            spilled.retry_backoff_ms == 0
                ? flush_interval_ms() * 2
                : std::min<std::uint64_t>(spilled.retry_backoff_ms * 2, 5000);
        spilled.retry_at_ms = clock_ms_ + spilled.retry_backoff_ms;
        unspill_errors_ += 1;
        registry_.counter("store.unspill_errors").add(1);
        reject(conn, "tenant reload from store failed; retry");
        return;
      }
    }
  }
  HandshakeAck ack;
  if (tenant == nullptr) {
    // max_tenants is daemon-wide: claim a slot in the shared count first,
    // back out on overflow.  Tenants are never erased, so the count only
    // grows and the claim cannot race a release.
    const std::size_t prev =
        tenant_total_.fetch_add(1, std::memory_order_relaxed);
    if (prev >= config_.max_tenants) {
      tenant_total_.fetch_sub(1, std::memory_order_relaxed);
      reject(conn, "tenant limit reached");
      return;
    }
    auto fresh = std::make_unique<Tenant>(request.tenant, config_.tenant,
                                          config_.observe_hook);
    if (SpanSink* sink = span_sink_for(request.tenant)) {
      fresh->set_span_sink(sink);
    }
    try {
      fresh->register_patterns(request.patterns);
    } catch (const Error& e) {
      tenant_total_.fetch_sub(1, std::memory_order_relaxed);
      reject(conn, std::string("bad pattern: ") + e.what());
      return;
    }
    tenant = fresh.get();
    tenants_.emplace(request.tenant, std::move(fresh));
    placement_.set_resident(request.tenant, index_);
    if (store_ != nullptr) {
      // Genesis first: the pattern list is the only coherent state a
      // brand-new tenant has, and recovery needs it to re-register.
      store_try([&] {
        store_->append_genesis(request.tenant, request.patterns);
      });
      durable_[request.tenant].last_active_ms = clock_ms_;
      store_work_pending_ = true;
    }
    ack.status = AckStatus::kFresh;
    ack.resume_position = 0;
  } else {
    if (tenant->conn_id != 0) {
      reject(conn, "tenant already attached");
      return;
    }
    if (tenant->state() == TenantState::kShed) {
      reject(conn, "tenant was shed: " + tenant->shed_reason());
      return;
    }
    if (tenant->patterns() != request.patterns) {
      reject(conn, "pattern set does not match the registered tenant");
      return;
    }
    ack.status = AckStatus::kResumed;
    ack.resume_position = tenant->session().next_position();
  }
  tenant->conn_id = conn.id();
  tenant->detach_deadline_ms = 0;
  conn.tenant = request.tenant;
  conn.set_state(ConnState::kStreaming);
  ack.shard = index_;
  registry_
      .counter("net.handshakes", ack.status == AckStatus::kFresh
                                     ? "status=\"fresh\""
                                     : "status=\"resumed\"")
      .add(1);
  queue_or_close(conn, encode_ack(ack));
  if (conn.state() == ConnState::kClosed) {
    return;
  }
  if (!tenant->streaming()) {
    // The stream already ended (a reconnect after completion); answer with
    // the terminal FIN immediately.
    send_fin(conn, *tenant);
    return;
  }
  on_stream_bytes(conn);  // bytes pipelined behind the handshake
}

void Shard::reject(Conn& conn, const std::string& message) {
  registry_.counter("net.handshakes", "status=\"rejected\"").add(1);
  HandshakeAck ack;
  ack.status = AckStatus::kRejected;
  ack.message = message;
  queue_or_close(conn, encode_ack(ack));
  if (conn.state() != ConnState::kClosed) {
    conn.set_state(ConnState::kClosing);
  }
}

void Shard::on_stream_bytes(Conn& conn) {
  Tenant* tenant = find_tenant(conn.tenant);
  if (tenant == nullptr) {
    conn.set_state(ConnState::kClosed);
    return;
  }
  const std::string_view bytes = conn.pending();
  if (!bytes.empty()) {
    // Capture the raw wire bytes for the durability log before they are
    // consumed; the store replays them through feed() on recovery.
    const bool capture = store_ != nullptr && tenant->streaming();
    tenant->feed(bytes);
    if (capture) {
      Durable& durable = durable_[conn.tenant];
      durable.pending.append(bytes);
      durable.last_active_ms = clock_ms_;
      store_work_pending_ = true;
    }
    conn.consume(bytes.size());
  }
  pump_tenant(conn, *tenant);
}

void Shard::pump_tenant(Conn& conn, Tenant& tenant) {
  for (const ResyncRequest& request : tenant.take_resyncs()) {
    registry_.counter("net.resyncs_forwarded").add(1);
    queue_or_close(conn, encode_resync_frame(request));
    if (conn.state() == ConnState::kClosed) {
      return;
    }
  }
  if (tenant.streaming()) {
    const bool over_bytes = config_.max_tenant_bytes != 0 &&
                            tenant.bytes_in() > config_.max_tenant_bytes;
    const bool over_corrupt =
        config_.max_corrupt_frames != 0 &&
        tenant.session().stats().frames_corrupt > config_.max_corrupt_frames;
    if (over_bytes || over_corrupt) {
      tenant.shed(over_bytes ? "byte budget exceeded"
                             : "corrupt-frame budget exceeded");
      registry_.counter("net.tenants_shed").add(1);
      update_meters(tenant);
      send_fin(conn, tenant);
      return;
    }
  }
  update_meters(tenant);
  if (tenant.maybe_finish()) {
    send_fin(conn, tenant);
  }
}

void Shard::send_fin(Conn& conn, Tenant& tenant) {
  const bool degraded = tenant.state() == TenantState::kDegraded ||
                        tenant.state() == TenantState::kShed;
  queue_or_close(conn, encode_fin_frame(degraded, tenant.shed_reason()));
  if (conn.state() != ConnState::kClosed) {
    conn.set_state(ConnState::kClosing);
  }
}

Shard::Meters& Shard::meters_for(Tenant& tenant) {
  Meters& m = meters_[tenant.name()];
  if (m.bytes == nullptr) {
    const std::string label = tenant_label(tenant.name());
    m.bytes = &registry_.counter("net.tenant.bytes", label,
                                 "stream bytes received");
    m.frames = &registry_.counter("net.tenant.frames", label,
                                  "session frames accepted");
    m.events = &registry_.counter("net.tenant.events", label,
                                  "events released to the monitor");
    m.corrupt = &registry_.counter("net.tenant.corrupt_frames", label,
                                   "frames rejected by CRC/length checks");
  }
  return m;
}

void Shard::seed_meters(Tenant& tenant) {
  // An adopted tenant's cumulative counters cover history the shards it
  // lived on already metered; start the delta snapshot at the current
  // values — without adding — so the merged totals never double count.
  meters_.erase(tenant.name());
  Meters& m = meters_for(tenant);
  m.last_bytes = tenant.bytes_in();
  m.last_frames = tenant.session().frames_ok();
  m.last_events = tenant.events_released();
  m.last_corrupt = tenant.session().stats().frames_corrupt;
}

void Shard::update_meters(Tenant& tenant) {
  Meters& m = meters_for(tenant);
  const std::uint64_t bytes = tenant.bytes_in();
  const std::uint64_t frames = tenant.session().frames_ok();
  const std::uint64_t events = tenant.events_released();
  const std::uint64_t corrupt = tenant.session().stats().frames_corrupt;
  m.bytes->add(bytes - m.last_bytes);
  m.frames->add(frames - m.last_frames);
  m.events->add(events - m.last_events);
  m.corrupt->add(corrupt - m.last_corrupt);
  m.last_bytes = bytes;
  m.last_frames = frames;
  m.last_events = events;
  m.last_corrupt = corrupt;
}

std::string Shard::healthz_rows() {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, tenant] : tenants_) {
    if (!first) {
      out << ",";
    }
    first = false;
    tenant->monitor().drain();
    out << "{\"name\":\"" << name << "\",\"shard\":" << index_
        << ",\"state\":\"" << to_string(tenant->state()) << "\",\"attached\":"
        << (tenant->conn_id != 0 ? "true" : "false")
        << ",\"degraded\":" << (tenant->degraded() ? "true" : "false")
        << ",\"bytes_in\":" << tenant->bytes_in()
        << ",\"events\":" << tenant->events_released()
        << ",\"migrations\":" << tenant->migrations << ",\"health\":";
    tenant->monitor().health().to_json(out);
    out << "}";
  }
  for (const auto& [name, spilled] : spilled_) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Evicted to the store: metadata only; the image is on disk and a
    // reconnect reloads it.
    out << "{\"name\":\"" << name << "\",\"shard\":" << index_
        << ",\"state\":\"spilled\",\"attached\":false,\"degraded\":"
        << (spilled.state == TenantState::kDegraded ||
                    spilled.state == TenantState::kShed
                ? "true"
                : "false")
        << ",\"bytes_in\":" << spilled.bytes_in
        << ",\"events\":" << spilled.events
        << ",\"migrations\":" << spilled.migrations << ",\"health\":null}";
  }
  return out.str();
}

std::string Shard::healthz_shard_json() {
  std::string out = "{\"shard\":" + std::to_string(index_) + ",\"store\":";
  if (store_ != nullptr) {
    out += "{\"degraded\":";
    out += store_degraded_ ? "true" : "false";
    out += ",\"append_errors\":" + std::to_string(append_errors_);
    out += ",\"unspill_errors\":" + std::to_string(unspill_errors_);
    out += ",\"spans\":" + std::to_string(store_->total_spans());
    out += ",\"pool\":";
    if (pool_ != nullptr) {
      const store::BufferPoolStats& bp = pool_->stats();
      out += "{\"hits\":" + std::to_string(bp.hits);
      out += ",\"misses\":" + std::to_string(bp.misses);
      out += ",\"evictions\":" + std::to_string(bp.evictions);
      out += ",\"load_errors\":" + std::to_string(bp.load_errors);
      out += ",\"frames\":" + std::to_string(bp.frames);
      out += ",\"bytes\":" + std::to_string(bp.bytes);
      out += ",\"pinned\":" + std::to_string(bp.pinned);
      out += ",\"compaction_backlog\":" +
             std::to_string(compactor_ != nullptr ? compactor_->backlog() : 0);
      out += "}";
    } else {
      out += "null";
    }
    out += "}";
  } else {
    out += "null";
  }
  out += ",\"replication\":";
  out += replicator_ != nullptr ? replicator_->healthz_json() : "null";
  out += "}";
  return out;
}

void Shard::queue_or_close(Conn& conn, std::string bytes) {
  if (!conn.queue_write(std::move(bytes))) {
    // The peer stopped reading long enough to blow the queue bound; it
    // forfeits the connection (never the tenant).
    registry_.counter("net.write_overflow").add(1);
    detach_tenant(conn);
    conn.set_state(ConnState::kClosed);
  }
}

void Shard::settle(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  if (conn.state() == ConnState::kClosed) {
    close_conn(id);
    return;
  }
  switch (conn.flush_writes()) {
    case IoStatus::kOk:
      want_epollout(conn, false);
      if (conn.state() == ConnState::kClosing) {
        close_conn(id);
      }
      break;
    case IoStatus::kWouldBlock:
      want_epollout(conn, true);
      break;
    case IoStatus::kEof:
    case IoStatus::kError:
      detach_tenant(conn);
      close_conn(id);
      break;
  }
}

void Shard::want_epollout(Conn& conn, bool want) {
  if (want == conn.epollout_armed) {
    return;
  }
  poller_.mod(conn.fd(), want ? (EPOLLIN | EPOLLOUT) : EPOLLIN, conn.id());
  conn.epollout_armed = want;
}

void Shard::detach_tenant(Conn& conn) {
  if (conn.tenant.empty()) {
    return;
  }
  Tenant* tenant = find_tenant(conn.tenant);
  conn.tenant.clear();
  if (tenant == nullptr || tenant->conn_id != conn.id()) {
    return;
  }
  tenant->conn_id = 0;
  if (tenant->streaming()) {
    // A partial frame tail left in the session buffer is fine: the next
    // attach's bytes re-synchronize via the frame markers, and position
    // dedup makes any replay idempotent.
    tenant->detach_deadline_ms = clock_ms_ + config_.detach_linger_ms;
    registry_.counter("net.detaches").add(1);
  }
}

void Shard::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  detach_tenant(conn);
  if (conn.fd() >= 0) {
    // A migrated-away conn already left the interest set with its fd.
    poller_.del(conn.fd());
  }
  registry_.counter("net.bytes_in_total").add(conn.bytes_in());
  registry_.counter("net.bytes_out_total").add(conn.bytes_out());
  registry_.gauge("net.connections").add(-1);
  conns_.erase(it);
}

void Shard::sweep_timers() {
  clock_ms_ = now_ms();
  if (config_.idle_timeout_ms != 0) {
    std::vector<std::uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
      if (clock_ms_ - conn->last_active_ms > config_.idle_timeout_ms) {
        idle.push_back(id);
      }
    }
    for (const std::uint64_t id : idle) {
      registry_.counter("net.idle_closed").add(1);
      close_conn(id);
    }
  }
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant->streaming()) {
      continue;
    }
    if (tenant->conn_id != 0) {
      // Attached: advance session time so resync grace and backoff fire
      // even when no bytes arrive, then forward whatever the tick raised.
      tenant->tick();
      const auto it = conns_.find(tenant->conn_id);
      if (it != conns_.end()) {
        pump_tenant(*it->second, *tenant);
        settle(tenant->conn_id);
      }
    } else if (tenant->detach_deadline_ms != 0 &&
               clock_ms_ >= tenant->detach_deadline_ms) {
      tenant->detach_deadline_ms = 0;
      tenant->finalize();
      update_meters(*tenant);
      registry_.counter("net.linger_finalized").add(1);
    }
  }
}

std::size_t Shard::write_checkpoints() {
  if (store_ != nullptr) {
    // Incremental: append + fsync whatever input arrived since the last
    // group commit — O(dirty state), never a full image per tenant.
    std::size_t dirty = 0;
    for (const auto& [name, durable] : durable_) {
      if (!durable.pending.empty()) {
        ++dirty;
      }
    }
    flush_store();
    registry_.counter("net.checkpoints_written").add(dirty);
    return dirty;
  }
  if (config_.checkpoint_dir.empty()) {
    return 0;
  }
  std::error_code ec;
  fs::create_directories(config_.checkpoint_dir, ec);
  std::size_t written = 0;
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant->can_checkpoint()) {
      continue;  // handshook, trace table never arrived: nothing to save
    }
    const fs::path final_path =
        fs::path(config_.checkpoint_dir) / (name + ".ckp");
    try {
      std::ostringstream out;
      tenant->checkpoint(out);
      if (!out || !write_file_durable(final_path.string(),
                                      std::move(out).str())) {
        throw SerializationError("checkpoint write failed");
      }
      ++written;
    } catch (const Error&) {
      registry_.counter("net.checkpoint_errors").add(1);
    }
  }
  registry_.counter("net.checkpoints_written").add(written);
  return written;
}

std::uint64_t Shard::flush_interval_ms() const noexcept {
  return std::max<std::uint64_t>(1, config_.flush_interval_ms);
}

bool Shard::store_try(const std::function<void()>& fn) {
  try {
    fn();
    return true;
  } catch (const Error&) {
    registry_.counter("store.errors").add(1);
    return false;
  }
}

void Shard::fold_store_stats() {
  if (store_ == nullptr) {
    return;
  }
  const auto fold = [this](const char* key, std::uint64_t current,
                           std::uint64_t& last) {
    if (current > last) {
      registry_.counter(key).add(current - last);
    }
    last = current;
  };
  const store::LogStats& log = store_->log_stats();
  fold("store.appends", log.appends, last_log_stats_.appends);
  fold("store.syncs", log.syncs, last_log_stats_.syncs);
  fold("store.rotations", log.rotations, last_log_stats_.rotations);
  fold("store.segments_collected", log.segments_deleted,
       last_log_stats_.segments_deleted);
  fold("store.torn_tail_bytes", log.torn_tail_bytes,
       last_log_stats_.torn_tail_bytes);
  fold("store.bytes_appended", log.total_bytes, last_log_stats_.total_bytes);
  const store::TenantStoreStats& ts = store_->stats();
  fold("store.genesis_records", ts.genesis_appends,
       last_store_stats_.genesis_appends);
  fold("store.base_records", ts.base_appends, last_store_stats_.base_appends);
  fold("store.delta_records", ts.delta_appends,
       last_store_stats_.delta_appends);
  fold("store.tombstone_records", ts.tombstone_appends,
       last_store_stats_.tombstone_appends);
  fold("store.delta_bytes", ts.delta_bytes, last_store_stats_.delta_bytes);
  fold("store.orphan_deltas", ts.orphan_deltas,
       last_store_stats_.orphan_deltas);
  fold("store.span_records", ts.span_appends, last_store_stats_.span_appends);
  fold("store.span_bytes", ts.span_bytes, last_store_stats_.span_bytes);
  fold("store.span_releases", ts.span_releases,
       last_store_stats_.span_releases);
  fold("store.spans_relocated", ts.spans_relocated,
       last_store_stats_.spans_relocated);
  fold("store.orphan_spans", ts.orphan_spans, last_store_stats_.orphan_spans);
  if (pool_ != nullptr) {
    const store::BufferPoolStats& bp = pool_->stats();
    fold("store.pool_hits", bp.hits, last_pool_stats_.hits);
    fold("store.pool_misses", bp.misses, last_pool_stats_.misses);
    fold("store.pool_evictions", bp.evictions, last_pool_stats_.evictions);
    fold("store.pool_load_errors", bp.load_errors,
         last_pool_stats_.load_errors);
  }
  if (compactor_ != nullptr) {
    const store::CompactorStats& cp = compactor_->stats();
    fold("store.compaction_ticks", cp.ticks, last_compactor_stats_.ticks);
    fold("store.compaction_spans_moved", cp.spans_moved,
         last_compactor_stats_.spans_moved);
    fold("store.compaction_segments_planned", cp.segments_planned,
         last_compactor_stats_.segments_planned);
    fold("store.compaction_rebases", cp.rebases_run,
         last_compactor_stats_.rebases_run);
    fold("store.compaction_rebase_failures", cp.rebase_failures,
         last_compactor_stats_.rebase_failures);
  }
}

void Shard::store_rebase(Tenant& tenant, std::uint64_t min_epoch) {
  if (store_ == nullptr || !tenant.can_checkpoint()) {
    return;
  }
  store_try([&] {
    std::ostringstream blob;
    tenant.checkpoint(blob);
    store_->append_base(tenant.name(), std::move(blob).str(), min_epoch);
  });
  store_work_pending_ = true;
}

bool Shard::flush_store() {
  if (store_ == nullptr) {
    return true;
  }
  bool all_ok = true;
  for (auto& [name, durable] : durable_) {
    if (!durable.pending.empty()) {
      // A disk fault may have swallowed the tenant's genesis record (it
      // is written outside the flush tick); deltas need a base to chain
      // from, so heal that first or the retry loop can never succeed.
      if (!store_->contains(name)) {
        Tenant* tenant = find_tenant(name);
        if (tenant == nullptr ||
            !store_try([&] {
              store_->append_genesis(name, tenant->patterns());
            })) {
          append_errors_ += 1;
          registry_.counter("store.append_errors").add(1);
          all_ok = false;
          continue;
        }
      }
      // Append before any re-base: a base written below supersedes the
      // delta chain, so the order delta-then-base is what makes the
      // re-base safe.
      std::string bytes = std::move(durable.pending);
      durable.pending.clear();
      if (store_try([&] { store_->append_delta(name, bytes); })) {
        durable.bytes_since_base += bytes.size();
      } else {
        // Put the bytes back for the retry tick.  Replay of a delta that
        // did make it to disk is idempotent (session positions dedup),
        // so re-appending after an ambiguous failure is safe.
        durable.pending = std::move(bytes);
        append_errors_ += 1;
        registry_.counter("store.append_errors").add(1);
        all_ok = false;
      }
    }
    if (config_.store_rebase_bytes != 0 &&
        durable.bytes_since_base >= config_.store_rebase_bytes) {
      if (compactor_ != nullptr) {
        // Off the flush tick: the compactor runs the (full-image, O(state))
        // rebase as its own quantum, so group-commit latency stays bounded
        // by the dirty bytes alone.  Re-scheduling until the rebase lands
        // is free — the queue dedups.
        compactor_->schedule_rebase(name);
      } else {
        Tenant* tenant = find_tenant(name);
        if (tenant != nullptr && tenant->can_checkpoint()) {
          store_rebase(*tenant, 0);
          durable.bytes_since_base = 0;
        }
      }
    }
  }
  if (store_->dirty()) {
    all_ok &= store_try([&] { store_->sync(); });  // the group commit
  }
  spill_pass();
  store_work_pending_ = !all_ok;
  fold_store_stats();
  return all_ok;
}

void Shard::spill_pass() {
  if (store_ == nullptr || config_.spill_bytes == 0) {
    return;
  }
  std::uint64_t resident = 0;
  for (const auto& [name, tenant] : tenants_) {
    resident += tenant->monitor().store().approx_bytes();
  }
  if (resident <= config_.spill_bytes) {
    return;
  }
  // Coldest-first over finished, detached, non-migrating tenants; an
  // attached or still-lingering tenant is never evicted from under its
  // producer.
  struct Candidate {
    std::uint64_t last_active_ms;
    std::string name;
  };
  std::vector<Candidate> candidates;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant->conn_id != 0 || tenant->streaming() ||
        !tenant->can_checkpoint() || placement_.is_migrating(name)) {
      continue;
    }
    candidates.push_back(Candidate{durable_[name].last_active_ms, name});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_active_ms < b.last_active_ms;
            });
  for (const Candidate& candidate : candidates) {
    if (resident <= config_.spill_bytes) {
      break;
    }
    Tenant& tenant = *tenants_.at(candidate.name);
    const std::uint64_t bytes = tenant.monitor().store().approx_bytes();
    Durable& durable = durable_[candidate.name];
    bool ok = true;
    if (durable.bytes_since_base != 0 || !store_->has_base(candidate.name)) {
      ok = store_try([&] {
        std::ostringstream blob;
        tenant.checkpoint(blob);
        store_->append_base(candidate.name, std::move(blob).str());
      });
    }
    // The image must be durable before the RAM copy goes away.
    ok = ok && store_try([&] { store_->sync(); });
    if (!ok) {
      continue;
    }
    update_meters(tenant);
    spilled_[candidate.name] =
        Spilled{tenant.state(), tenant.shed_reason(), tenant.bytes_in(),
                tenant.migrations, tenant.events_released()};
    meters_.erase(candidate.name);
    durable_.erase(candidate.name);
    tenants_.erase(candidate.name);
    resident -= std::min(resident, bytes);
    registry_.counter("net.tenants_spilled").add(1);
  }
}

Tenant* Shard::unspill(const std::string& name) {
  const auto it = spilled_.find(name);
  if (it == spilled_.end() || store_ == nullptr) {
    return nullptr;
  }
  try {
    const store::TenantImage image = store_->read_tenant(name);
    auto tenant = rebuild_tenant(name, image);
    tenant->restore_bytes_in(it->second.bytes_in);
    tenant->migrations = it->second.migrations;
    Tenant& ref = *tenants_.insert_or_assign(name, std::move(tenant))
                       .first->second;
    seed_meters(ref);
    Durable& durable = durable_[name];
    durable.last_active_ms = clock_ms_;
    durable.bytes_since_base = 0;
    spilled_.erase(it);
    registry_.counter("net.tenants_unspilled").add(1);
    return &ref;
  } catch (const Error&) {
    registry_.counter("store.errors").add(1);
    return nullptr;  // spilled entry kept: a retry may succeed
  }
}

void Shard::graceful_shutdown() {
  poller_.del(ingest_->fd());
  ingest_->close();
  if (compactor_ != nullptr) {
    // Abandon any in-flight rewrite plan so the final flush below sees a
    // quiesced log; relocations already appended are already consistent.
    compactor_->quiesce();
  }
  if (replicator_ != nullptr) {
    // Final flush below still pumps nothing (we are past the loop), so
    // just push any queued frames and drop the link.
    replicator_->close_link();
  }
  // Drain every pipeline so checkpoints capture a settled state; tenants
  // stay in whatever stream state they reached (a mid-stream tenant is
  // checkpointed mid-stream — that is the restart-resume contract).
  for (const auto& [name, tenant] : tenants_) {
    tenant->monitor().drain();
    update_meters(*tenant);
  }
  // The checkpoint directory is shared, but tenant name sets are disjoint
  // by affinity, so concurrent shard shutdowns never collide on a file.
  write_checkpoints();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    close_conn(id);
  }
}

}  // namespace ocep::net
