// The ocep_served connection protocol (docs/SERVER.md).
//
// A connection opens with one client->server handshake, answered by one
// server->client ack; after that the two directions diverge:
//
//  * forward (client -> server): raw session frames exactly as
//    SessionServer emits them (marker | seq | len | crc | payload,
//    poet/session.h).  The server feeds the bytes verbatim into the
//    tenant's SessionClient, so every loss-tolerance property of the
//    session layer — CRC containment, marker resync, position dedup,
//    snapshot refill — carries over to TCP unchanged.
//  * reverse (server -> client): small typed control frames — resync
//    requests, the final FIN, operator notices.  TCP already guarantees
//    integrity and order here, so the framing is a plain type byte plus a
//    length-prefixed CRC'd body; the CRC guards against a desynchronized
//    *implementation* (a parser bug), not the wire.
//
// Handshake and ack share one envelope:  magic(8) | body_len u32le |
// body_crc32c u32le | body.  The length prefix makes incremental parsing
// trivial and bounds memory before a peer is trusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "poet/session.h"

namespace ocep::net {

inline constexpr char kHandshakeMagic[8] = {'O', 'C', 'E', 'P',
                                            'N', 'E', 'T', '1'};
inline constexpr char kAckMagic[8] = {'O', 'C', 'E', 'P', 'N', 'E', 'T', 'A'};

/// Bound on a handshake/ack body; larger advertisements are rejected
/// before any allocation trusts the peer.
inline constexpr std::uint32_t kMaxHandshakeBody = 1U << 20U;

/// Handshake flag bits.
inline constexpr std::uint64_t kFlagResume = 1;

struct HandshakeRequest {
  std::uint64_t flags = 0;
  std::string tenant;
  /// Pattern sources registered for this tenant, in order.  On re-attach
  /// and checkpoint-resume the set must match the registered one.
  std::vector<std::string> patterns;

  [[nodiscard]] bool want_resume() const noexcept {
    return (flags & kFlagResume) != 0;
  }
};

enum class AckStatus : std::uint8_t {
  kFresh = 0,    ///< tenant created, stream from position 0
  kResumed = 1,  ///< tenant re-attached or restored; dedup handles replay
  kRejected = 2, ///< message says why; the server closes after sending
};

struct HandshakeAck {
  AckStatus status = AckStatus::kFresh;
  /// First global position the server's session still lacks; a resuming
  /// producer may skip retained prefixes below it (replaying them is also
  /// correct — the session dedups on position).
  std::uint64_t resume_position = 0;
  std::string message;
  /// Index of the shard that answered (the tenant's current placement —
  /// which live rebalancing may have moved off the affinity hash).
  /// Informational: producers need not act on it.  Absent in pre-rebalance
  /// acks; the parser defaults it to 0.
  std::uint64_t shard = 0;
};

/// Reverse-channel frame types.
inline constexpr char kReverseResync = 'R';
inline constexpr char kReverseFin = 'F';
inline constexpr char kReverseNotice = 'E';

struct ReverseFrame {
  char type = 0;
  ResyncRequest resync;   ///< kReverseResync
  bool degraded = false;  ///< kReverseFin
  std::string message;    ///< kReverseFin / kReverseNotice
};

[[nodiscard]] std::string encode_handshake(const HandshakeRequest& request);
[[nodiscard]] std::string encode_ack(const HandshakeAck& ack);
[[nodiscard]] std::string encode_resync_frame(const ResyncRequest& request);
[[nodiscard]] std::string encode_fin_frame(bool degraded,
                                           std::string_view message);
[[nodiscard]] std::string encode_notice_frame(std::string_view message);

enum class ParseStatus : std::uint8_t {
  kNeedMore,  ///< incomplete; feed more bytes and retry
  kDone,      ///< parsed; `pos` advanced past the consumed bytes
  kError,     ///< malformed; the connection cannot be trusted further
};

/// Incremental parsers over an accumulation buffer.  They consume from
/// `buf[pos..)` and advance `pos` only on kDone; on kError the message
/// explains what broke (bad magic, oversized body, CRC mismatch).
[[nodiscard]] ParseStatus parse_handshake(std::string_view buf,
                                          std::size_t& pos,
                                          HandshakeRequest& out,
                                          std::string& error);
[[nodiscard]] ParseStatus parse_ack(std::string_view buf, std::size_t& pos,
                                    HandshakeAck& out, std::string& error);
[[nodiscard]] ParseStatus parse_reverse_frame(std::string_view buf,
                                              std::size_t& pos,
                                              ReverseFrame& out,
                                              std::string& error);

}  // namespace ocep::net
