#include "net/standby.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "store/segment_log.h"

namespace ocep::net {
namespace {

constexpr std::uint64_t kTagWake = 0;
constexpr std::uint64_t kTagRepl = 1;
constexpr std::uint64_t kTagAdmin = 2;
constexpr std::uint64_t kFirstConnId = 16;
constexpr std::uint64_t kMaxShardCount = 256;

std::string shard_dir(const std::string& base, std::uint64_t index) {
  // Must match the primary's layout (shard.cc) so a promoted standby's
  // store opens as-is.
  return base + "/shard-" + std::to_string(index);
}

}  // namespace

Standby::Standby(StandbyConfig config)
    : config_(std::move(config)), next_conn_id_(kFirstConnId) {
  std::filesystem::create_directories(config_.store_dir);
  repl_listener_ = std::make_unique<Listener>(config_.host, config_.port);
  admin_listener_ =
      std::make_unique<Listener>(config_.host, config_.admin_port);
  int pipe_fds[2] = {-1, -1};
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw NetError("pipe2: " + std::string(std::strerror(errno)));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  poller_.add(wake_read_, EPOLLIN, kTagWake);
  poller_.add(repl_listener_->fd(), EPOLLIN, kTagRepl);
  poller_.add(admin_listener_->fd(), EPOLLIN, kTagAdmin);
}

Standby::~Standby() {
  if (wake_read_ >= 0) {
    ::close(wake_read_);
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
  }
}

std::uint16_t Standby::port() const { return repl_listener_->port(); }
std::uint16_t Standby::admin_port() const { return admin_listener_->port(); }

void Standby::wake() {
  const char byte = 'w';
  static_cast<void>(::write(wake_write_, &byte, 1));
}

void Standby::request_shutdown() {
  shutdown_.store(true, std::memory_order_release);
  wake();
}

void Standby::request_promote() {
  promote_.store(true, std::memory_order_release);
  wake();
}

StandbyExit Standby::run() {
  std::vector<Poller::Event> events;
  while (!shutdown_.load(std::memory_order_acquire) &&
         !promote_.load(std::memory_order_acquire)) {
    poller_.wait(events, 500);
    for (const Poller::Event& ev : events) {
      switch (ev.tag) {
        case kTagWake: {
          char buf[64];
          while (::read(wake_read_, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case kTagRepl:
          accept_repl();
          break;
        case kTagAdmin:
          accept_admin();
          break;
        default:
          on_conn_event(ev.tag, ev.events);
          break;
      }
    }
  }

  // Release the ports and leave every replica durable and closed: the
  // caller may construct a Server on this exact config next.
  poller_.del(repl_listener_->fd());
  poller_.del(admin_listener_->fd());
  repl_listener_->close();
  admin_listener_->close();
  while (!conns_.empty()) {
    close_conn(conns_.begin()->first);
  }
  for (auto& [index, replica] : replicas_) {
    try {
      replica->commit();
    } catch (const StoreError&) {
      registry_.counter("standby.store_errors").add(1);
    }
  }
  replicas_.clear();
  shard_owner_.clear();
  return promote_.load(std::memory_order_acquire) ? StandbyExit::kPromote
                                                  : StandbyExit::kShutdown;
}

void Standby::accept_repl() {
  repl_listener_->accept_ready([this](OwnedFd fd) {
    const std::uint64_t id = next_conn_id_++;
    poller_.add(fd.get(), EPOLLIN | EPOLLOUT, id);
    auto conn = std::make_unique<Conn>(std::move(fd), id, ConnKind::kIngest);
    conn->set_state(ConnState::kStreaming);
    conns_.emplace(id, std::move(conn));
    repl_conns_.emplace(id, ReplConn{});
  });
}

void Standby::accept_admin() {
  admin_listener_->accept_ready([this](OwnedFd fd) {
    const std::uint64_t id = next_conn_id_++;
    poller_.add(fd.get(), EPOLLIN | EPOLLOUT, id);
    conns_.emplace(id,
                   std::make_unique<Conn>(std::move(fd), id, ConnKind::kAdmin));
  });
}

void Standby::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  if (it->second->fd() >= 0) {
    poller_.del(it->second->fd());
  }
  const auto rc = repl_conns_.find(id);
  if (rc != repl_conns_.end()) {
    const auto owner = shard_owner_.find(rc->second.shard_index);
    if (owner != shard_owner_.end() && owner->second == id) {
      shard_owner_.erase(owner);
    }
    repl_conns_.erase(rc);
  }
  conns_.erase(it);
}

void Standby::drop_shard(std::uint64_t shard_index) {
  // A store-level failure poisons this replica: destroy it so the next
  // hello reopens (and self-heals) the directory from scratch.
  replicas_.erase(shard_index);
  shard_owner_.erase(shard_index);
}

void Standby::on_conn_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (conn.flush_writes() == IoStatus::kError) {
      close_conn(id);
      return;
    }
    if (conn.state() == ConnState::kClosing && !conn.write_pending()) {
      close_conn(id);
      return;
    }
  }
  if ((events & EPOLLIN) == 0) {
    return;
  }
  const IoStatus status = conn.fill();
  if (conn.kind() == ConnKind::kAdmin) {
    advance_admin(conn);
  } else {
    advance_repl(conn);
  }
  if (conns_.find(id) == conns_.end()) {
    return;  // advance closed it
  }
  // Eager flush: queue_write only queues, and an edge-triggered EPOLLOUT
  // never fires while the socket stays writable.
  if (conn.write_pending() && conn.flush_writes() == IoStatus::kError) {
    close_conn(id);
    return;
  }
  if (status == IoStatus::kEof || status == IoStatus::kError) {
    close_conn(id);
    return;
  }
  if (conn.state() == ConnState::kClosing && !conn.write_pending()) {
    close_conn(id);
  }
}

void Standby::advance_repl(Conn& conn) {
  const auto rc_it = repl_conns_.find(conn.id());
  if (rc_it == repl_conns_.end()) {
    close_conn(conn.id());
    return;
  }
  ReplConn& rc = rc_it->second;

  if (!rc.hello_done) {
    store::ReplHello hello;
    const std::int64_t consumed =
        store::try_decode_repl_hello(conn.pending(), hello);
    if (consumed < 0 || (consumed == 0 && conn.pending().size() > 4096)) {
      close_conn(conn.id());
      return;
    }
    if (consumed == 0) {
      return;
    }
    conn.consume(static_cast<std::size_t>(consumed));
    if (hello.proto != store::kReplProtoVersion ||
        hello.shard_count == 0 || hello.shard_count > kMaxShardCount ||
        hello.shard_index >= hello.shard_count) {
      close_conn(conn.id());
      return;
    }
    // A restarted primary redials before its old connection times out:
    // the newest hello for a shard wins and the stale link is dropped.
    const auto owner = shard_owner_.find(hello.shard_index);
    if (owner != shard_owner_.end() && owner->second != conn.id()) {
      close_conn(owner->second);
    }
    try {
      auto& replica = replicas_[hello.shard_index];
      if (replica == nullptr) {
        replica = std::make_unique<store::ReplicaLog>(
            shard_dir(config_.store_dir, hello.shard_index));
      }
      rc.shard_index = hello.shard_index;
      rc.records_base = replica->records_applied();
      shard_owner_[hello.shard_index] = conn.id();
      rc.hello_done = true;
      registry_.counter("standby.hellos").add(1);
      if (!conn.queue_write(store::encode_repl_state(replica->state()))) {
        close_conn(conn.id());
        return;
      }
    } catch (const StoreError&) {
      registry_.counter("standby.store_errors").add(1);
      drop_shard(hello.shard_index);
      close_conn(conn.id());
      return;
    }
  }

  while (true) {
    store::ReplFrameType type{};
    std::string payload;
    const std::int64_t consumed =
        store::try_decode_repl_frame(conn.pending(), type, payload);
    if (consumed == 0) {
      return;
    }
    if (consumed < 0) {
      close_conn(conn.id());
      return;
    }
    conn.consume(static_cast<std::size_t>(consumed));
    if (!dispatch_frame(conn, rc, type, payload)) {
      return;  // conn is gone
    }
  }
}

bool Standby::dispatch_frame(Conn& conn, ReplConn& rc,
                             store::ReplFrameType type,
                             const std::string& payload) {
  store::ReplicaLog* replica = nullptr;
  const auto rep_it = replicas_.find(rc.shard_index);
  if (rep_it != replicas_.end()) {
    replica = rep_it->second.get();
  }
  if (replica == nullptr) {
    close_conn(conn.id());
    return false;
  }
  registry_.counter("standby.frames").add(1);
  try {
    switch (type) {
      case store::ReplFrameType::kReset:
        replica->reset();
        return true;
      case store::ReplFrameType::kOpenSegment: {
        std::uint32_t id = 0;
        if (!store::decode_repl_open(payload, id)) {
          break;
        }
        replica->open_segment(id);
        return true;
      }
      case store::ReplFrameType::kAppend: {
        std::uint32_t id = 0;
        std::uint64_t offset = 0;
        std::string_view bytes;
        if (!store::decode_repl_append(payload, id, offset, bytes)) {
          break;
        }
        replica->append(id, offset, bytes);
        return true;
      }
      case store::ReplFrameType::kDrop: {
        std::uint32_t id = 0;
        if (!store::decode_repl_drop(payload, id)) {
          break;
        }
        replica->drop_segment(id);
        return true;
      }
      case store::ReplFrameType::kCommit: {
        std::uint64_t seq = 0;
        if (!store::decode_repl_commit(payload, seq)) {
          break;
        }
        replica->commit();
        store::ReplAck ack;
        ack.seq = seq;
        ack.segment = replica->active_segment();
        ack.offset = replica->active_size();
        ack.records = replica->records_applied() - rc.records_base;
        registry_.counter("standby.commits").add(1);
        if (!conn.queue_write(store::encode_repl_ack(ack))) {
          close_conn(conn.id());
          return false;
        }
        return true;
      }
      case store::ReplFrameType::kAck:
        break;  // follower never receives acks
    }
  } catch (const StoreError&) {
    registry_.counter("standby.store_errors").add(1);
    drop_shard(rc.shard_index);
    close_conn(conn.id());
    return false;
  }
  close_conn(conn.id());
  return false;
}

void Standby::respond_http(Conn& conn, int code, const std::string& body) {
  const char* reason = code == 200 ? "OK" : code == 404 ? "Not Found"
                                                        : "Error";
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: application/json\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n" + body;
  if (!conn.queue_write(std::move(out))) {
    close_conn(conn.id());
    return;
  }
  conn.set_state(ConnState::kClosing);
}

std::string Standby::healthz_json() const {
  std::string out = "{\"role\":\"standby\",\"shards\":[";
  bool first = true;
  for (const auto& [index, replica] : replicas_) {
    if (!first) {
      out += ",";
    }
    first = false;
    const store::ReplicaLog::Stats& stats = replica->stats();
    out += "{\"shard\":" + std::to_string(index) +
           ",\"active_segment\":" + std::to_string(replica->active_segment()) +
           ",\"active_size\":" + std::to_string(replica->active_size()) +
           ",\"records_applied\":" +
           std::to_string(replica->records_applied()) +
           ",\"appends\":" + std::to_string(stats.appends) +
           ",\"commits\":" + std::to_string(stats.commits) +
           ",\"resets\":" + std::to_string(stats.resets) + "}";
  }
  out += "],\"connections\":" + std::to_string(conns_.size()) + "}\n";
  return out;
}

void Standby::advance_admin(Conn& conn) {
  const std::string_view pending = conn.pending();
  const std::size_t head_end = pending.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (pending.size() > Conn::kMaxPrefaceBytes) {
      close_conn(conn.id());
    }
    return;
  }
  const std::string_view head = pending.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    close_conn(conn.id());
    return;
  }
  const std::string method(line.substr(0, sp1));
  std::string path(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::size_t query = path.find('?');
  if (query != std::string::npos) {
    path.resize(query);
  }
  conn.consume(head_end + 4);

  if (method == "GET" && path == "/healthz") {
    respond_http(conn, 200, healthz_json());
  } else if (method == "GET" && path == "/metrics") {
    respond_http(conn, 200, registry_.to_prometheus());
  } else if (method == "POST" && path == "/promote") {
    respond_http(conn, 200, "{\"promoting\":true}\n");
    promote_.store(true, std::memory_order_release);
  } else {
    respond_http(conn, 404, "{\"error\":\"not found\"}\n");
  }
}

}  // namespace ocep::net
