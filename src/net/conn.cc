#include "net/conn.h"

namespace ocep::net {

IoStatus Conn::fill() {
  char chunk[65536];
  while (true) {
    const IoResult result = read_some(fd_.get(), chunk, sizeof(chunk));
    switch (result.status) {
      case IoStatus::kOk:
        bytes_in_ += result.bytes;
        rbuf_.append(chunk, result.bytes);
        continue;
      case IoStatus::kWouldBlock:
      case IoStatus::kEof:
      case IoStatus::kError:
        return result.status;
    }
  }
}

void Conn::consume(std::size_t n) {
  rpos_ += n;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > 65536) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

bool Conn::queue_write(std::string bytes) {
  if (bytes.empty()) {
    return true;
  }
  if (wq_bytes_ + bytes.size() > kMaxWriteQueue) {
    return false;
  }
  wq_bytes_ += bytes.size();
  wq_.push_back(std::move(bytes));
  return true;
}

std::string Conn::take_pending_writes() {
  std::string out;
  out.reserve(wq_bytes_);
  bool head = true;
  for (const std::string& chunk : wq_) {
    if (head) {
      out.append(chunk, wq_head_off_, std::string::npos);
      head = false;
    } else {
      out.append(chunk);
    }
  }
  wq_.clear();
  wq_bytes_ = 0;
  wq_head_off_ = 0;
  return out;
}

IoStatus Conn::flush_writes() {
  while (!wq_.empty()) {
    const std::string& head = wq_.front();
    const IoResult result = write_some(fd_.get(), head.data() + wq_head_off_,
                                       head.size() - wq_head_off_);
    switch (result.status) {
      case IoStatus::kOk:
        bytes_out_ += result.bytes;
        wq_head_off_ += result.bytes;
        wq_bytes_ -= result.bytes;
        if (wq_head_off_ == head.size()) {
          wq_.pop_front();
          wq_head_off_ = 0;
        }
        continue;
      case IoStatus::kWouldBlock:
      case IoStatus::kEof:
      case IoStatus::kError:
        return result.status;
    }
  }
  return IoStatus::kOk;
}

}  // namespace ocep::net
