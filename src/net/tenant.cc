#include "net/tenant.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep::net {
namespace {

constexpr std::string_view kTenantCkpMagic = "OCEPNTC1";
constexpr std::size_t kMaxCheckpointPatterns = 1024;

void put_u32le(std::ostream& out, std::uint32_t value) {
  char raw[4];
  raw[0] = static_cast<char>(value & 0xffU);
  raw[1] = static_cast<char>((value >> 8U) & 0xffU);
  raw[2] = static_cast<char>((value >> 16U) & 0xffU);
  raw[3] = static_cast<char>((value >> 24U) & 0xffU);
  out.write(raw, 4);
}

}  // namespace

const char* to_string(TenantState state) noexcept {
  switch (state) {
    case TenantState::kStreaming:
      return "streaming";
    case TenantState::kComplete:
      return "complete";
    case TenantState::kDegraded:
      return "degraded";
    case TenantState::kShed:
      return "shed";
  }
  return "unknown";
}

Tenant::Tenant(std::string name, const TenantConfig& config,
               ObserveHook observe_hook)
    : name_(std::move(name)),
      config_(config),
      observe_hook_(std::move(observe_hook)) {}

Tenant::~Tenant() = default;

void Tenant::TapSink::on_traces(const std::vector<Symbol>& names) {
  owner_.monitor_->on_traces(names);
}

void Tenant::TapSink::on_event(const Event& event, const VectorClock& clock) {
  owner_.monitor_->on_event(event, clock);
  const std::uint64_t position = owner_.released_++;
  if (owner_.observe_hook_) {
    owner_.observe_hook_(owner_.name_, position);
  }
}

void Tenant::build(const std::vector<std::string>& patterns) {
  patterns_ = patterns;
  pool_ = std::make_unique<StringPool>();
  monitor_ =
      std::make_unique<Monitor>(*pool_, config_.monitor, config_.storage);
  for (const std::string& pattern : patterns_) {
    monitor_->add_pattern(pattern, config_.matcher);
  }
  if (span_sink_ != nullptr) {
    monitor_->set_span_sink(span_sink_);
  }
  tap_ = std::make_unique<TapSink>(*this);
  transport_ = std::make_unique<QueuedTransport>();
  SessionConfig session = config_.session;
  if (session.linearizer.shed_type == kEmptySymbol) {
    session.linearizer.shed_type = pool_->intern("__shed");
  }
  session_ =
      std::make_unique<SessionClient>(*tap_, *pool_, *transport_, session);
  if (monitor_->metrics_enabled()) {
    session_->bind_metrics(monitor_->metrics());
  }
  monitor_->set_ingest_source([this] { return session_->stats(); });
}

void Tenant::register_patterns(const std::vector<std::string>& patterns) {
  build(patterns);
}

void Tenant::set_span_sink(SpanSink* sink) {
  span_sink_ = sink;
  if (monitor_ != nullptr) {
    monitor_->set_span_sink(sink);
  }
}

void Tenant::feed(std::string_view bytes) {
  if (state_ != TenantState::kStreaming) {
    return;  // late bytes after FIN: a replaying reconnect, ignore
  }
  bytes_in_ += bytes.size();
  session_->feed(bytes);
}

void Tenant::tick() {
  if (state_ == TenantState::kStreaming) {
    session_->tick();
  }
}

std::vector<ResyncRequest> Tenant::take_resyncs() {
  std::vector<ResyncRequest> taken = std::move(transport_->pending);
  transport_->pending.clear();
  return taken;
}

bool Tenant::maybe_finish() {
  if (state_ != TenantState::kStreaming || !session_->done()) {
    return false;
  }
  monitor_->drain();
  state_ =
      session_->degraded() ? TenantState::kDegraded : TenantState::kComplete;
  return true;
}

void Tenant::finalize() {
  if (state_ != TenantState::kStreaming) {
    return;
  }
  session_->finish_input();
  for (std::uint64_t i = 0; i < config_.settle_ticks && !session_->done();
       ++i) {
    session_->tick();
    transport_->pending.clear();  // nobody is attached to answer resyncs
  }
  monitor_->drain();
  if (session_->done() && !session_->degraded()) {
    state_ = TenantState::kComplete;
  } else {
    state_ = TenantState::kDegraded;
  }
}

void Tenant::shed(std::string reason) {
  shed_reason_ = std::move(reason);
  finalize();
  state_ = TenantState::kShed;
}

bool Tenant::degraded() const {
  return session_ != nullptr && session_->degraded();
}

void Tenant::checkpoint(std::ostream& out) {
  std::ostringstream body;
  poet::put_varint(body, patterns_.size());
  for (const std::string& pattern : patterns_) {
    poet::put_string(body, pattern);
  }
  std::ostringstream monitor_blob;
  monitor_->checkpoint(monitor_blob);
  poet::put_string(body, monitor_blob.str());
  std::ostringstream session_blob;
  session_->checkpoint(session_blob);
  poet::put_string(body, session_blob.str());
  const std::string bytes = body.str();
  out.write(kTenantCkpMagic.data(),
            static_cast<std::streamsize>(kTenantCkpMagic.size()));
  put_u32le(out, crc32c(bytes));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw SerializationError("tenant checkpoint: write failed");
  }
}

void Tenant::restore(std::istream& in) {
  TenantCheckpoint ckp = read_tenant_checkpoint(in);
  build(ckp.patterns);
  std::istringstream monitor_blob(ckp.monitor_blob);
  monitor_->restore(monitor_blob);
  std::istringstream session_blob(ckp.session_blob);
  session_->restore(session_blob);
  // The monitor already holds everything the session released before the
  // checkpoint; keep the tap's position counter in step with it.
  released_ = monitor_->events_seen();
  // A stream that reached its terminal state before the checkpoint must
  // restore terminal too: the session watermarks round-trip, so done()
  // is answerable here, and leaving a finished tenant kStreaming would
  // let a post-completion migration (or a restart after BYE) resurrect
  // it as live with no connection ever coming to finish it.
  if (session_->done()) {
    state_ = session_->degraded() ? TenantState::kDegraded
                                  : TenantState::kComplete;
  }
}

TenantCheckpoint read_tenant_checkpoint(std::istream& in) {
  char magic[8];
  in.read(magic, 8);
  if (in.gcount() != 8 ||
      std::string_view(magic, 8) != kTenantCkpMagic) {
    throw SerializationError("tenant checkpoint: bad magic");
  }
  char raw_crc[4];
  in.read(raw_crc, 4);
  if (in.gcount() != 4) {
    throw SerializationError("tenant checkpoint: truncated header");
  }
  std::uint32_t expect = 0;
  for (int i = 3; i >= 0; --i) {
    expect = (expect << 8U) | static_cast<unsigned char>(raw_crc[i]);
  }
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (crc32c(body) != expect) {
    throw SerializationError("tenant checkpoint: CRC mismatch");
  }
  std::istringstream body_in(body);
  TenantCheckpoint ckp;
  const std::uint64_t count = poet::get_varint(body_in);
  if (count > kMaxCheckpointPatterns) {
    throw SerializationError("tenant checkpoint: implausible pattern count");
  }
  ckp.patterns.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ckp.patterns.push_back(poet::get_string(body_in));
  }
  ckp.monitor_blob = poet::get_string(body_in);
  ckp.session_blob = poet::get_string(body_in);
  if (body_in.peek() != std::char_traits<char>::eof()) {
    throw SerializationError("tenant checkpoint: trailing bytes");
  }
  return ckp;
}

}  // namespace ocep::net
