// Producer-side connector: dials an ocep_served ingest port, performs the
// handshake, and then acts as the ByteSink under a SessionServer so the
// existing session encoder streams events over TCP unchanged.
//
// The connector is deliberately blocking (it lives in tools, tests, and
// the bench driver, not in the reactor): forward writes block on the
// socket with a timeout, and the reverse channel is polled between event
// writes so server-issued resync requests are answered promptly.  See
// docs/SERVER.md for the wire grammar.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "poet/event_store.h"
#include "poet/session.h"

namespace ocep::net {

struct ConnectorConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string tenant;
  std::vector<std::string> patterns;
  /// Announce willingness to resume (kFlagResume); the ack then carries
  /// the server's release watermark.
  bool want_resume = true;
  /// Per-write timeout; a server stuck longer than this fails the write.
  int io_timeout_ms = 30000;
  /// Split every outbound buffer into chunks of this many bytes (0 = send
  /// whole buffers).  Tests use 1 to prove byte-at-a-time reassembly.
  std::size_t write_chunk = 0;
};

/// One ingest connection.  Construct (connects + handshakes), check
/// ack().status, then hand it to a SessionServer as its ByteSink.
class Connector final : public ByteSink {
 public:
  explicit Connector(const ConnectorConfig& config);
  ~Connector() override;

  Connector(const Connector&) = delete;
  Connector& operator=(const Connector&) = delete;

  /// Handshake outcome; on kRejected the message says why and the socket
  /// is already dead for writing.
  [[nodiscard]] const HandshakeAck& ack() const noexcept { return ack_; }

  /// ByteSink: ships session-frame bytes to the server (blocking, looping
  /// over short writes; throws NetError on timeout or a dead peer).
  void write(std::string_view bytes) override;

  /// Drains available reverse frames, answering resync requests through
  /// `server` (nullptr = drop them).  Waits up to `timeout_ms` for the
  /// first frame (0 = only what is already readable).  Returns the number
  /// of frames handled.
  std::size_t poll_reverse(SessionServer* server, int timeout_ms = 0);

  /// Polls until the FIN frame arrives or `timeout_ms` elapses, answering
  /// resyncs meanwhile.  Returns true when the FIN was received.
  bool wait_fin(SessionServer* server, int timeout_ms = 30000);

  [[nodiscard]] bool fin_received() const noexcept { return fin_received_; }
  [[nodiscard]] const ReverseFrame& fin() const noexcept { return fin_; }
  [[nodiscard]] const std::string& last_notice() const noexcept {
    return last_notice_;
  }
  [[nodiscard]] std::uint64_t resyncs_answered() const noexcept {
    return resyncs_answered_;
  }

  /// Half-closes the send direction (EOF at the server) while the reverse
  /// channel stays open for the FIN.
  void shutdown_send() noexcept;
  /// Hard close, as an abrupt producer death would.
  void close() noexcept { fd_.reset(); }
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

 private:
  void handle_frame(const ReverseFrame& frame, SessionServer* server);

  ConnectorConfig config_;
  OwnedFd fd_;
  HandshakeAck ack_;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  ReverseFrame fin_;
  bool fin_received_ = false;
  std::string last_notice_;
  std::uint64_t resyncs_answered_ = 0;
};

/// One-call producer: streams `store` to a server as tenant
/// `config.tenant`, answering resyncs, and (optionally) waits for the FIN.
struct StreamOptions {
  SessionConfig session;
  /// Events between reverse-channel polls.
  std::uint64_t poll_every = 64;
  /// Stop after this many events without BYE or FIN — simulates a
  /// producer killed mid-stream (0 = stream everything and finish).
  std::uint64_t max_events = 0;
  /// Suppress event frames below this global position (the HELLO is
  /// suppressed too when > 0).  Set to the ack's resume_position to send
  /// only the tail, or above the server watermark to force a snapshot
  /// resync; the SessionServer still retains the full stream either way,
  /// so resyncs can refill anything.
  std::uint64_t skip_below = 0;
  /// Invoked just before event at global position `pos` is encoded
  /// (bench latency tap).
  std::function<void(std::uint64_t pos)> before_write;
  int fin_timeout_ms = 30000;
};

struct StreamResult {
  HandshakeAck ack;
  bool fin_received = false;
  ReverseFrame fin;
  std::uint64_t events_sent = 0;
  SessionServer::Stats session;
};

[[nodiscard]] StreamResult stream_store(const EventStore& store,
                                        const StringPool& pool,
                                        const ConnectorConfig& config,
                                        const StreamOptions& options = {});

}  // namespace ocep::net
