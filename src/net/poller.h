// Thin epoll wrapper.  The server runs one edge-triggered readiness loop:
// every registration uses EPOLLET, so a readiness event means "drain until
// EAGAIN", and a missed drain is a hang, not a slowdown.  Registrations
// carry a plain 64-bit tag (the server maps tags to listeners, the wake
// pipe, and connection ids) instead of pointers, so stale events after a
// close cannot dangle.
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace ocep::net {

class Poller {
 public:
  struct Event {
    std::uint64_t tag = 0;
    std::uint32_t events = 0;
  };

  Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd` edge-triggered for `events` (EPOLLET is added here).
  void add(int fd, std::uint32_t events, std::uint64_t tag);
  /// Rearms `fd` with a new interest mask (EPOLLET added).
  void mod(int fd, std::uint32_t events, std::uint64_t tag);
  /// Deregisters; ignores ENOENT so teardown paths need not track whether
  /// registration happened.
  void del(int fd) noexcept;

  /// Waits up to `timeout_ms` (-1 = forever) and fills `out`.  EINTR is
  /// reported as zero events so callers re-check their clocks.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  OwnedFd epfd_;
  std::vector<epoll_event> raw_;
};

}  // namespace ocep::net
