#include "net/listener.h"

#include <sys/socket.h>

#include <cerrno>

namespace ocep::net {

Listener::Listener(const std::string& host, std::uint16_t port,
                   bool reuseport)
    : port_(port) {
  fd_ = tcp_listen(host, port_, 128, reuseport);
}

void Listener::accept_ready(const std::function<void(OwnedFd)>& on_accept) {
  while (fd_.valid()) {
    const int got =
        ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // backlog drained
      }
      // ECONNABORTED (peer gave up), EMFILE/ENFILE (fd pressure), and
      // friends poison one accept, not the listener; count and move on.
      ++accept_errors_;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        return;  // pressure: retry on the next readiness edge
      }
      continue;
    }
    OwnedFd conn(got);
    set_nodelay(conn.get());
    on_accept(std::move(conn));
  }
}

}  // namespace ocep::net
