#include "net/client.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

namespace ocep::net {

Connector::Connector(const ConnectorConfig& config) : config_(config) {
  fd_ = tcp_connect(config_.host, config_.port);
  const std::string hello = [&] {
    HandshakeRequest request;
    request.flags = config_.want_resume ? kFlagResume : 0;
    request.tenant = config_.tenant;
    request.patterns = config_.patterns;
    return encode_handshake(request);
  }();
  write_all(fd_.get(), hello, config_.io_timeout_ms);
  // Block until the ack envelope is complete.
  while (true) {
    std::string error;
    const ParseStatus status = parse_ack(rbuf_, rpos_, ack_, error);
    if (status == ParseStatus::kDone) {
      break;
    }
    if (status == ParseStatus::kError) {
      throw NetError("handshake ack: " + error);
    }
    if (!wait_readable(fd_.get(), config_.io_timeout_ms)) {
      throw NetError("handshake ack: timed out");
    }
    char chunk[4096];
    const IoResult got = read_some(fd_.get(), chunk, sizeof(chunk));
    if (got.status == IoStatus::kOk) {
      rbuf_.append(chunk, got.bytes);
    } else if (got.status == IoStatus::kEof) {
      throw NetError("handshake ack: server closed the connection");
    } else if (got.status == IoStatus::kError) {
      throw NetError("handshake ack: " + got.error);
    }
  }
}

Connector::~Connector() = default;

void Connector::write(std::string_view bytes) {
  if (config_.write_chunk == 0) {
    write_all(fd_.get(), bytes, config_.io_timeout_ms);
    return;
  }
  while (!bytes.empty()) {
    const std::size_t take = std::min(config_.write_chunk, bytes.size());
    write_all(fd_.get(), bytes.substr(0, take), config_.io_timeout_ms);
    bytes.remove_prefix(take);
  }
}

std::size_t Connector::poll_reverse(SessionServer* server, int timeout_ms) {
  std::size_t handled = 0;
  bool may_wait = timeout_ms > 0;
  while (fd_.valid()) {
    // Drain complete frames already buffered.
    while (true) {
      ReverseFrame frame;
      std::string error;
      const ParseStatus status = parse_reverse_frame(rbuf_, rpos_, frame,
                                                     error);
      if (status == ParseStatus::kDone) {
        ++handled;
        handle_frame(frame, server);
        continue;
      }
      if (status == ParseStatus::kError) {
        throw NetError("reverse channel: " + error);
      }
      break;  // kNeedMore
    }
    if (rpos_ == rbuf_.size()) {
      rbuf_.clear();
      rpos_ = 0;
    }
    const int wait_ms = may_wait && handled == 0 ? timeout_ms : 0;
    may_wait = false;
    if (!wait_readable(fd_.get(), wait_ms)) {
      return handled;
    }
    char chunk[4096];
    const IoResult got = read_some(fd_.get(), chunk, sizeof(chunk));
    if (got.status == IoStatus::kOk) {
      rbuf_.append(chunk, got.bytes);
      continue;
    }
    if (got.status == IoStatus::kWouldBlock) {
      return handled;
    }
    // EOF or error: the server is gone; nothing more will arrive.
    fd_.reset();
    return handled;
  }
  return handled;
}

void Connector::handle_frame(const ReverseFrame& frame,
                             SessionServer* server) {
  switch (frame.type) {
    case kReverseResync:
      if (server != nullptr) {
        ++resyncs_answered_;
        try {
          server->handle_resync(frame.resync);
        } catch (const NetError&) {
          // The server closed while its resync request was in flight; a
          // FIN may still be sitting behind it in the buffer, so keep
          // draining instead of propagating.
        }
      }
      break;
    case kReverseFin:
      fin_ = frame;
      fin_received_ = true;
      break;
    case kReverseNotice:
      last_notice_ = frame.message;
      break;
    default:
      break;
  }
}

bool Connector::wait_fin(SessionServer* server, int timeout_ms) {
  const int slice = 50;
  int waited = 0;
  while (!fin_received_ && fd_.valid()) {
    poll_reverse(server, slice);
    waited += slice;
    if (timeout_ms >= 0 && waited >= timeout_ms) {
      break;
    }
  }
  return fin_received_;
}

void Connector::shutdown_send() noexcept {
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_WR);
  }
}

namespace {

/// Suppresses the forward stream until opened: used to resume by sending
/// only the tail while the SessionServer still retains everything.
class GateSink final : public ByteSink {
 public:
  explicit GateSink(ByteSink& next) : next_(next) {}
  void write(std::string_view bytes) override {
    if (open) {
      next_.write(bytes);
    }
  }
  bool open = true;

 private:
  ByteSink& next_;
};

}  // namespace

StreamResult stream_store(const EventStore& store, const StringPool& pool,
                          const ConnectorConfig& config,
                          const StreamOptions& options) {
  StreamResult result;
  Connector connector(config);
  result.ack = connector.ack();
  if (result.ack.status == AckStatus::kRejected) {
    return result;
  }

  std::vector<Symbol> names;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    names.push_back(store.trace_name(t));
  }
  GateSink gate(connector);
  gate.open = options.skip_below == 0;  // HELLO suppressed when resuming
  SessionServer session(gate, pool, names, options.session);

  const std::uint64_t total = store.event_count();
  const std::uint64_t limit =
      options.max_events == 0 ? total : std::min(options.max_events, total);
  for (std::uint64_t pos = 0; pos < total; ++pos) {
    if (pos >= limit) {
      // Producer "killed" mid-stream: no BYE, no FIN, socket torn down by
      // the destructor.
      result.session = session.stats();
      return result;
    }
    if (!gate.open && pos >= options.skip_below) {
      gate.open = true;
    }
    if (options.before_write) {
      options.before_write(pos);
    }
    const EventId id = store.arrival(pos);
    session.write(store.event(id), store.clock(id));
    if (gate.open) {
      ++result.events_sent;
    }
    if (options.poll_every != 0 && (pos + 1) % options.poll_every == 0) {
      connector.poll_reverse(&session, 0);
    }
  }
  gate.open = true;
  session.finish();
  // Keep the forward direction open while waiting: the server may still
  // request a resync (a skip_below gap, or faults upstream), and the
  // snapshot answer travels forward.  On a clean FIN the server closes
  // the connection itself.
  result.fin_received = connector.wait_fin(&session, options.fin_timeout_ms);
  result.fin = connector.fin();
  result.session = session.stats();
  return result;
}

}  // namespace ocep::net
