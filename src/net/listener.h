// Accepting socket for one plane (ingest or admin).  Accept handling is
// edge-triggered like everything else: one readiness event drains the
// whole backlog, retrying EINTR and stopping at EAGAIN, so a burst of
// connects cannot be half-observed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/socket.h"

namespace ocep::net {

class Listener {
 public:
  /// Binds and listens on host:port (0 = ephemeral; see port()).  With
  /// `reuseport`, SO_REUSEPORT lets sibling shard listeners share the
  /// port.
  Listener(const std::string& host, std::uint16_t port,
           bool reuseport = false);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Drains the accept queue, invoking `on_accept` with each new
  /// connection (already non-blocking, TCP_NODELAY set).  Transient
  /// per-connection failures (ECONNABORTED, EMFILE) are counted in
  /// `accept_errors` and skipped; the listener itself stays healthy.
  void accept_ready(const std::function<void(OwnedFd)>& on_accept);

  /// Stops accepting: closes the socket.  Safe to call twice.
  void close() noexcept { fd_.reset(); }

  [[nodiscard]] std::uint64_t accept_errors() const noexcept {
    return accept_errors_;
  }

 private:
  OwnedFd fd_;
  std::uint16_t port_ = 0;
  std::uint64_t accept_errors_ = 0;
};

}  // namespace ocep::net
