#include "net/poller.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ocep::net {

Poller::Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)), raw_(64) {
  if (!epfd_.valid()) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
}

void Poller::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
}

void Poller::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void Poller::del(int fd) noexcept {
  static_cast<void>(::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr));
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  const int got = ::epoll_wait(epfd_.get(), raw_.data(),
                               static_cast<int>(raw_.size()), timeout_ms);
  if (got < 0) {
    if (errno == EINTR) {
      return 0;
    }
    throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
  }
  out.reserve(static_cast<std::size_t>(got));
  for (int i = 0; i < got; ++i) {
    out.push_back(Event{raw_[static_cast<std::size_t>(i)].data.u64,
                        raw_[static_cast<std::size_t>(i)].events});
  }
  if (static_cast<std::size_t>(got) == raw_.size()) {
    raw_.resize(raw_.size() * 2);  // never starve under a full batch
  }
  return static_cast<std::size_t>(got);
}

}  // namespace ocep::net
