// POSIX TCP plumbing for the serving layer: an RAII descriptor and the
// EINTR/EAGAIN-correct read/write primitives every state machine in
// src/net builds on.
//
// Two I/O disciplines live here, matching the two sides of the protocol:
//
//  * read_some / write_some — one non-blocking attempt, EINTR retried,
//    outcome classified (kOk / kWouldBlock / kEof / kError).  The epoll
//    loop uses these: edge-triggered readiness means "call until
//    kWouldBlock", never "call once".
//  * write_all / read_ready — the connector (client) side, where blocking
//    with a poll() deadline is simpler and correct: short writes loop,
//    EAGAIN waits for writability, and a stuck peer surfaces as a timeout
//    instead of a hung process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace ocep::net {

/// Raised on socket-level failures (bind, connect, timeout, hard I/O
/// error).  Messages carry the failing operation and errno text.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// Move-only owner of a file descriptor.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Closes the held descriptor (EINTR-safe) and adopts `fd`.
  void reset(int fd = -1) noexcept;

  /// Relinquishes ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking I/O attempt.
enum class IoStatus : std::uint8_t {
  kOk,          ///< progress was made (`bytes` > 0)
  kWouldBlock,  ///< EAGAIN: wait for the next readiness edge
  kEof,         ///< orderly shutdown from the peer (reads only)
  kError,       ///< hard failure; `error` holds errno
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
  int error = 0;
};

/// One read attempt with EINTR retry.  A zero-byte read is kEof.
[[nodiscard]] IoResult read_some(int fd, char* buf, std::size_t len);

/// One write attempt with EINTR retry.  Short writes are kOk with the
/// partial count; the caller loops.
[[nodiscard]] IoResult write_some(int fd, const char* buf, std::size_t len);

void set_nonblocking(int fd);
void set_nodelay(int fd);

/// Binds and listens on host:port.  port 0 picks an ephemeral port; the
/// chosen one is written back.  The returned socket is non-blocking.
/// With `reuseport` set, SO_REUSEPORT is enabled before bind so several
/// listeners (one per reactor shard) can share the port and let the
/// kernel spread incoming connections across them.
[[nodiscard]] OwnedFd tcp_listen(const std::string& host, std::uint16_t& port,
                                 int backlog = 128, bool reuseport = false);

/// Blocking connect; the returned socket stays blocking (the connector
/// uses poll-bounded I/O on it).  Throws NetError on failure.
[[nodiscard]] OwnedFd tcp_connect(const std::string& host,
                                  std::uint16_t port);

/// Starts a non-blocking connect (the reactor-side dial: the replication
/// link must never stall the shard loop).  On return `in_progress` says
/// whether the connect is still pending — the caller waits for EPOLLOUT
/// and checks SO_ERROR.  Throws NetError on immediate failure.
[[nodiscard]] OwnedFd tcp_connect_begin(const std::string& host,
                                        std::uint16_t port,
                                        bool& in_progress);

/// Writes every byte, retrying EINTR and short writes and waiting (via
/// poll) through EAGAIN.  Throws NetError on error or after `timeout_ms`
/// without progress; the message reports how many bytes had been written
/// so a failure is positioned in the stream.
void write_all(int fd, std::string_view bytes, int timeout_ms);

/// Waits up to `timeout_ms` for readability.  Returns false on timeout;
/// throws NetError on poll failure.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

}  // namespace ocep::net
