// Tenant -> shard placement for the serving daemon.
//
// Default placement is the pure affinity hash (shard_for): stable across
// restarts, needs no state.  Live rebalancing breaks that purity — a
// migrated tenant, or a fresh tenant placed least-loaded, lives somewhere
// the hash does not predict — so this map records the exceptions.  Every
// shard consults it when routing a handshake, the rebalancer consults it
// for residency, and the overridden entries persist to
// `<checkpoint_dir>/placement.map` so a restart re-homes checkpointed
// tenants to the shard that last owned them (entries whose shard index no
// longer exists after a --shards change fall back to the hash).
//
// Thread model: one mutex.  Shard threads touch it once per handshake and
// once per migration edge; the admin thread reads residency per rebalance
// cycle.  It is never on the per-byte serving path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ocep::net {

/// Stable tenant -> shard affinity: FNV-1a (64-bit) of the name, mod the
/// shard count.  Deterministic across processes and restarts, so
/// checkpoint restore and producer reconnects agree on placement.
[[nodiscard]] std::size_t shard_for(std::string_view tenant,
                                    std::size_t shard_count) noexcept;

class PlacementMap {
 public:
  explicit PlacementMap(std::size_t shard_count);

  /// Where handshakes and checkpoint restores route `tenant`: its
  /// recorded placement when one exists, the affinity hash otherwise.
  [[nodiscard]] std::size_t owner_of(std::string_view tenant) const;

  /// Recorded placement, when any (residency or override); nullopt means
  /// the tenant has never been seen and the hash rules.
  [[nodiscard]] std::optional<std::size_t> shard_of(
      std::string_view tenant) const;

  /// True while a migration for `tenant` is in flight (frozen on the
  /// source, not yet adopted); handshakes are refused with a retryable
  /// message during the window.
  [[nodiscard]] bool is_migrating(std::string_view tenant) const;

  /// Routing with least-loaded placement for fresh tenants: a recorded
  /// tenant keeps its shard; an unknown one is assigned the shard with
  /// the lowest load hint (resident count as tie-break) and the choice is
  /// recorded as a persistent override.
  [[nodiscard]] std::size_t route_or_assign(const std::string& tenant);

  /// Records where a tenant actually lives (create / restore / adopt).
  /// Keeps any override bit already present.
  void set_resident(const std::string& tenant, std::size_t shard);

  /// Migration edges.  begin points routing at `target` and raises the
  /// in-flight flag (the choice persists as an override so a crash
  /// mid-migration still re-homes to one defined place); finish/cancel
  /// settle routing on the shard that ended up holding the tenant.
  void begin_migration(const std::string& tenant, std::size_t target);
  void finish_migration(const std::string& tenant, std::size_t shard);
  void cancel_migration(const std::string& tenant, std::size_t shard);

  /// Rebalancer feedback: per-shard load scores consulted by
  /// route_or_assign.  Size must equal shard_count().
  void set_load_hints(std::vector<double> hints);

  /// Snapshot of settled residents (in-flight tenants excluded), for the
  /// rebalancer's per-shard load accounting.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> residents()
      const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::size_t override_count() const;

  /// Persistence: `magic "OCEPPLC1" | u32le crc32c(body) | body` where
  /// body = varint count, count x (string name, varint shard).  Only
  /// overridden entries are written — hash-placed tenants re-home by
  /// hash, which is what keeps a plain (never rebalanced) daemon's
  /// reshard-restart behaviour byte-for-byte unchanged.
  void save(std::ostream& out) const;
  /// Throws SerializationError on corruption.  Entries naming a shard
  /// index >= shard_count() are dropped: after a --shards shrink those
  /// tenants fall back to the affinity hash.
  void load(std::istream& in);
  /// tmp + rename into `<dir>/placement.map`; false (counted by the
  /// caller) on I/O failure.  No-op when dir is empty.
  bool save_file(const std::string& dir) const;
  /// Missing file or empty dir is a no-op; corrupt files throw.
  void load_file(const std::string& dir);

 private:
  struct Entry {
    std::size_t shard = 0;
    bool overridden = false;  ///< survives restarts via placement.map
    bool migrating = false;
  };

  mutable std::mutex mutex_;
  std::size_t shard_count_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<double> load_hints_;
};

}  // namespace ocep::net
