#include "net/replicator.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <climits>
#include <utility>

#include "common/crc32c.h"
#include "common/error.h"

namespace ocep::net {
namespace {

constexpr std::size_t kMaxWbuf = 1U << 20U;   ///< pause disk reads past this
constexpr std::uint64_t kChunkBytes = 256U << 10U;
constexpr std::uint64_t kBackoffStartMs = 100;
constexpr std::uint64_t kBackoffCapMs = 2000;
/// A follower that accepts the TCP connect but never answers the hello
/// would otherwise pin the link forever.
constexpr std::uint64_t kHandshakeDeadlineMs = 5000;

}  // namespace

Replicator::Replicator(std::string host, std::uint16_t port,
                       std::size_t shard_index, std::size_t shard_count,
                       const store::SegmentLog& log, Poller& poller,
                       std::uint64_t tag, obs::Registry& registry)
    : host_(std::move(host)),
      port_(port),
      shard_index_(shard_index),
      shard_count_(shard_count),
      log_(log),
      poller_(poller),
      tag_(tag),
      registry_(registry),
      gauge_connected_(&registry.gauge("repl.connected")),
      gauge_lag_bytes_(&registry.gauge("repl.lag_bytes")),
      gauge_lag_records_(&registry.gauge("repl.lag_records")) {
  gauge_connected_->set(0);
}

Replicator::~Replicator() { close_link(); }

void Replicator::close_link() {
  if (fd_.valid()) {
    flush();  // best effort: push any queued commit out before closing
    poller_.del(fd_.get());
    fd_.reset();
  }
  if (state_ == State::kStreaming) {
    gauge_connected_->set(0);
  }
  state_ = State::kBackoff;
  rbuf_.clear();
  wbuf_.clear();
  wbuf_off_ = 0;
  view_.clear();
  count_pending_.clear();
}

void Replicator::disconnect(std::uint64_t now_ms, const char* reason) {
  if (fd_.valid()) {
    poller_.del(fd_.get());
    fd_.reset();
  }
  if (state_ == State::kStreaming) {
    registry_.counter("repl.disconnects").add(1);
    gauge_connected_->set(0);
  }
  registry_.counter(std::string("repl.drop.") + reason).add(1);
  state_ = State::kBackoff;
  backoff_ms_ = backoff_ms_ == 0
                    ? kBackoffStartMs
                    : std::min(backoff_ms_ * 2, kBackoffCapMs);
  retry_at_ms_ = now_ms + backoff_ms_;
  rbuf_.clear();
  wbuf_.clear();
  wbuf_off_ = 0;
  view_.clear();
  count_pending_.clear();
  records_streamed_ = 0;
  dirty_since_commit_ = false;
}

void Replicator::tick(std::uint64_t now_ms) {
  clock_ms_ = now_ms;
  switch (state_) {
    case State::kBackoff:
      if (now_ms >= retry_at_ms_) {
        start_connect(now_ms);
      }
      break;
    case State::kConnecting:
    case State::kHello:
      if (now_ms - retry_at_ms_ > kHandshakeDeadlineMs) {
        disconnect(now_ms, "handshake_timeout");
      }
      break;
    case State::kStreaming:
      break;
  }
}

int Replicator::timeout_bound_ms(std::uint64_t now_ms) const {
  switch (state_) {
    case State::kBackoff: {
      const std::uint64_t wait =
          retry_at_ms_ > now_ms ? retry_at_ms_ - now_ms : 1;
      return static_cast<int>(std::min<std::uint64_t>(wait, INT_MAX));
    }
    case State::kConnecting:
    case State::kHello:
      return 100;
    case State::kStreaming:
      return INT_MAX;
  }
  return INT_MAX;
}

void Replicator::start_connect(std::uint64_t now_ms) {
  try {
    bool in_progress = false;
    fd_ = tcp_connect_begin(host_, port_, in_progress);
    poller_.add(fd_.get(), EPOLLIN | EPOLLOUT, tag_);
    retry_at_ms_ = now_ms;  // doubles as the handshake-deadline anchor
    if (in_progress) {
      state_ = State::kConnecting;
    } else {
      on_connect_writable();
    }
  } catch (const Error&) {
    fd_.reset();
    disconnect(now_ms, "connect");
  }
}

void Replicator::on_connect_writable() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    disconnect(clock_ms_, "connect");
    return;
  }
  state_ = State::kHello;
  store::ReplHello hello;
  hello.shard_index = shard_index_;
  hello.shard_count = shard_count_;
  send(store::encode_repl_hello(hello));
  flush();
}

void Replicator::send(std::string bytes) { wbuf_ += bytes; }

void Replicator::flush() {
  if (!fd_.valid()) {
    return;
  }
  while (wbuf_off_ < wbuf_.size()) {
    const IoResult result = write_some(fd_.get(), wbuf_.data() + wbuf_off_,
                                       wbuf_.size() - wbuf_off_);
    if (result.status == IoStatus::kOk) {
      wbuf_off_ += result.bytes;
      continue;
    }
    if (result.status == IoStatus::kWouldBlock) {
      break;  // EPOLLOUT rearms the flush
    }
    disconnect(clock_ms_, "write");
    return;
  }
  if (wbuf_off_ == wbuf_.size()) {
    wbuf_.clear();
    wbuf_off_ = 0;
  } else if (wbuf_off_ > kMaxWbuf) {
    wbuf_.erase(0, wbuf_off_);
    wbuf_off_ = 0;
  }
}

void Replicator::on_event(std::uint32_t events) {
  if (!fd_.valid()) {
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    disconnect(clock_ms_, "hup");
    return;
  }
  if (state_ == State::kConnecting && (events & EPOLLOUT) != 0) {
    on_connect_writable();
    if (!fd_.valid()) {
      return;
    }
  }
  if ((events & EPOLLIN) != 0) {
    char buf[16384];
    while (true) {
      const IoResult result = read_some(fd_.get(), buf, sizeof(buf));
      if (result.status == IoStatus::kOk) {
        rbuf_.append(buf, result.bytes);
        continue;
      }
      if (result.status == IoStatus::kWouldBlock) {
        break;
      }
      disconnect(clock_ms_, result.status == IoStatus::kEof ? "eof" : "read");
      return;
    }
    if (state_ == State::kHello) {
      std::vector<store::ReplSegmentState> states;
      const std::int64_t consumed = store::try_decode_repl_state(rbuf_, states);
      if (consumed < 0) {
        disconnect(clock_ms_, "bad_state_frame");
        return;
      }
      if (consumed > 0) {
        rbuf_.erase(0, static_cast<std::size_t>(consumed));
        try {
          handle_state_frame(std::move(states));
        } catch (const Error&) {
          registry_.counter("repl.errors").add(1);
          disconnect(clock_ms_, "store");
          return;
        }
      }
    }
    if (state_ == State::kStreaming) {
      handle_acks();
    }
  }
  if ((events & EPOLLOUT) != 0 && fd_.valid()) {
    flush();
    if (state_ == State::kStreaming && wbuf_.size() - wbuf_off_ < kMaxWbuf) {
      pump();
    }
  }
}

void Replicator::handle_state_frame(
    std::vector<store::ReplSegmentState> states) {
  std::sort(states.begin(), states.end(),
            [](const store::ReplSegmentState& a,
               const store::ReplSegmentState& b) { return a.id < b.id; });
  const std::vector<store::SegmentView> views = log_.segments();
  std::map<std::uint32_t, std::uint64_t> primary;
  std::uint32_t primary_max = 0;
  for (const store::SegmentView& v : views) {
    primary[v.id] = v.bytes;
    primary_max = std::max(primary_max, v.id);
  }
  const std::uint32_t follower_max = states.empty() ? 0 : states.back().id;

  bool resync = false;
  // Every primary segment at or below the follower's frontier must be
  // present there: the follower appends segments in ascending order, so
  // a hole it is past can never be filled in.
  for (const store::SegmentView& v : views) {
    if (v.id > follower_max) {
      continue;
    }
    const auto has = std::find_if(states.begin(), states.end(),
                                  [&v](const store::ReplSegmentState& s) {
                                    return s.id == v.id;
                                  });
    if (has == states.end()) {
      resync = true;
    }
  }
  view_.clear();
  for (const store::ReplSegmentState& s : states) {
    const auto it = primary.find(s.id);
    if (it == primary.end()) {
      if (s.id > primary_max) {
        resync = true;  // follower is ahead of us: it is not our prefix
        break;
      }
      view_[s.id] = s.bytes;  // we compacted it away; 'D' will mirror that
      continue;
    }
    if (s.bytes > it->second ||
        (s.id != follower_max && s.bytes != it->second)) {
      resync = true;
      break;
    }
    const std::string prefix = log_.read_range(s.id, 0, s.bytes);
    if (prefix.size() != s.bytes || crc32c(prefix) != s.crc) {
      resync = true;
      break;
    }
    view_[s.id] = s.bytes;
  }

  count_pending_.clear();
  records_streamed_ = 0;
  if (resync) {
    registry_.counter("repl.resyncs").add(1);
    resyncs_local_ += 1;
    send(store::encode_repl_frame(store::ReplFrameType::kReset, {}));
    view_.clear();
  } else if (follower_max != 0 && primary.count(follower_max) != 0) {
    // Prime the record-frame walk with the resume segment's prefix so a
    // mid-frame resume offset does not desynchronize the count.
    const std::uint64_t resume = view_[follower_max];
    if (resume > store::kSegmentHeaderBytes) {
      (void)store::count_record_frames(
          count_pending_,
          log_.read_range(follower_max, store::kSegmentHeaderBytes,
                          resume - store::kSegmentHeaderBytes));
    }
  }
  state_ = State::kStreaming;
  backoff_ms_ = 0;
  acked_once_ = false;
  last_ack_ = {};
  registry_.counter("repl.connects").add(1);
  connects_local_ += 1;
  gauge_connected_->set(1);
  // Force a commit even when nothing needs shipping: the resulting ack
  // gives the lag gauges a baseline right away.
  dirty_since_commit_ = true;
  pump();
}

void Replicator::pump() {
  try {
    refresh_lag();
  } catch (const Error&) {
    registry_.counter("repl.errors").add(1);
  }
  if (state_ != State::kStreaming) {
    return;
  }
  try {
    while (wbuf_.size() - wbuf_off_ < kMaxWbuf) {
      const std::vector<store::SegmentView> views = log_.segments();
      // Mirror compaction first: anything the follower holds that our
      // manifest no longer names is dead bytes there too.
      std::uint32_t drop = 0;
      for (const auto& [id, bytes] : view_) {
        const bool known =
            std::any_of(views.begin(), views.end(),
                        [id = id](const store::SegmentView& v) {
                          return v.id == id;
                        });
        if (!known) {
          drop = id;
          break;
        }
      }
      if (drop != 0) {
        send(store::encode_repl_drop(drop));
        if (drop == last_ship_segment_) {
          count_pending_.clear();
        }
        view_.erase(drop);
        dirty_since_commit_ = true;
        continue;
      }
      bool progressed = false;
      for (const store::SegmentView& v : views) {
        const auto it = view_.find(v.id);
        if (it == view_.end()) {
          send(store::encode_repl_open(v.id));
          view_[v.id] = store::kSegmentHeaderBytes;
          dirty_since_commit_ = true;
          progressed = true;
          break;
        }
        if (it->second < v.bytes) {
          const std::uint64_t want =
              std::min<std::uint64_t>(kChunkBytes, v.bytes - it->second);
          const std::string chunk = log_.read_range(v.id, it->second, want);
          if (chunk.empty()) {
            break;
          }
          send(store::encode_repl_append(v.id, it->second, chunk));
          records_streamed_ += store::count_record_frames(count_pending_,
                                                          chunk);
          last_ship_segment_ = v.id;
          it->second += chunk.size();
          registry_.counter("repl.bytes_shipped").add(chunk.size());
          registry_.counter("repl.frames_shipped").add(1);
          dirty_since_commit_ = true;
          progressed = true;
          break;
        }
      }
      if (!progressed) {
        if (dirty_since_commit_) {
          send(store::encode_repl_commit(++commit_seq_));
          dirty_since_commit_ = false;
        }
        break;
      }
    }
    flush();
  } catch (const Error&) {
    registry_.counter("repl.errors").add(1);
    disconnect(clock_ms_, "store");
  }
}

void Replicator::handle_acks() {
  while (true) {
    store::ReplFrameType type{};
    std::string payload;
    const std::int64_t consumed =
        store::try_decode_repl_frame(rbuf_, type, payload);
    if (consumed == 0) {
      break;
    }
    if (consumed < 0 || type != store::ReplFrameType::kAck) {
      disconnect(clock_ms_, "bad_ack");
      return;
    }
    rbuf_.erase(0, static_cast<std::size_t>(consumed));
    store::ReplAck ack;
    if (!store::decode_repl_ack(payload, ack)) {
      disconnect(clock_ms_, "bad_ack");
      return;
    }
    last_ack_ = ack;
    acked_once_ = true;
    registry_.counter("repl.acks").add(1);
  }
  try {
    refresh_lag();
  } catch (const Error&) {
    registry_.counter("repl.errors").add(1);
  }
}

void Replicator::refresh_lag() {
  std::uint64_t lag = 0;
  for (const store::SegmentView& v : log_.segments()) {
    if (!acked_once_ || v.id > last_ack_.segment) {
      lag += v.bytes;
    } else if (v.id == last_ack_.segment) {
      lag += v.bytes - std::min(v.bytes, last_ack_.offset);
    }
  }
  lag_bytes_ = lag;
  gauge_lag_bytes_->set(static_cast<std::int64_t>(lag));
  const std::uint64_t unacked_records =
      records_streamed_ -
      std::min(records_streamed_,
               acked_once_ ? last_ack_.records : std::uint64_t{0});
  gauge_lag_records_->set(static_cast<std::int64_t>(unacked_records));
}

std::string Replicator::healthz_json() const {
  std::string out = "{\"target\":\"" + host_ + ":" + std::to_string(port_) +
                    "\",\"connected\":";
  out += state_ == State::kStreaming ? "true" : "false";
  out += ",\"lag_bytes\":" + std::to_string(lag_bytes_);
  const std::uint64_t unacked =
      records_streamed_ -
      std::min(records_streamed_,
               acked_once_ ? last_ack_.records : std::uint64_t{0});
  out += ",\"lag_records\":" + std::to_string(unacked);
  out += ",\"acked_segment\":" + std::to_string(last_ack_.segment);
  out += ",\"acked_offset\":" + std::to_string(last_ack_.offset);
  out += ",\"connects\":" + std::to_string(connects_local_);
  out += ",\"resyncs\":" + std::to_string(resyncs_local_);
  out += "}";
  return out;
}

}  // namespace ocep::net
