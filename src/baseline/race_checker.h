// Vector-timestamp message-race checker (the §V-C.2 comparison, in the
// style of MPIRace-Check [32]: keep track of the receive events on a trace
// and compare their timestamps for causality; two concurrent incoming
// messages race).
//
// Also serves as the ground-truth oracle for the race experiments: it
// reports exactly the racing receive pairs, at the cost of comparing each
// new receive against every earlier receive on the same trace.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "poet/event_store.h"

namespace ocep::baseline {

class RaceChecker {
 public:
  struct Race {
    EventId first_receive;
    EventId second_receive;
  };
  using Callback = std::function<void(const Race&)>;

  /// With `keep_pairs` false the checker only counts races and invokes the
  /// callback; it does not materialize the pair list (which is quadratic in
  /// the receive count on racy workloads).
  explicit RaceChecker(const EventStore& store, Callback on_race = nullptr,
                       bool keep_pairs = true);

  /// Feeds one event (already in the store), in arrival order.
  void observe(const Event& event);

  [[nodiscard]] std::size_t races() const noexcept { return races_; }
  [[nodiscard]] const std::vector<Race>& found() const noexcept {
    return found_;
  }

 private:
  const EventStore& store_;
  Callback on_race_;
  bool keep_pairs_ = true;
  /// Per trace: receives recorded so far with their partner sends.
  struct Past {
    EventId receive;
    EventId send;
  };
  std::vector<std::vector<Past>> history_;
  bool initialized_ = false;
  std::vector<Race> found_;
  std::size_t races_ = 0;
};

}  // namespace ocep::baseline
