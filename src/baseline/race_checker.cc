#include "baseline/race_checker.h"

namespace ocep::baseline {

RaceChecker::RaceChecker(const EventStore& store, Callback on_race,
                         bool keep_pairs)
    : store_(store), on_race_(std::move(on_race)), keep_pairs_(keep_pairs) {}

void RaceChecker::observe(const Event& event) {
  if (!initialized_) {
    initialized_ = true;
    history_.assign(store_.trace_count(), {});
  }
  if (event.kind != EventKind::kReceive || event.message == kNoMessage) {
    return;
  }
  const EventId send = store_.send_of(event.message);
  if (send.index == kNoEvent) {
    return;
  }
  std::vector<Past>& past = history_[event.id.trace];
  for (const Past& earlier : past) {
    // Two incoming messages race when their sends are concurrent.
    if (store_.relate(earlier.send, send) == Relation::kConcurrent) {
      const Race race{earlier.receive, event.id};
      if (keep_pairs_) {
        found_.push_back(race);
      }
      ++races_;
      if (on_race_) {
        on_race_(race);
      }
    }
  }
  past.push_back(Past{event.id, send});
}

}  // namespace ocep::baseline
