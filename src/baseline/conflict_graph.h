// Conflict-graph atomicity-violation detector (the §V-C.3 comparison:
// approaches that search for unserializable patterns over shared-variable
// and synchronization events [40], which the paper quotes at 0.4-40 s).
//
// Tracks critical-section instances (enter/exit pairs per trace) and, when
// a section completes, compares it for concurrency against every section
// recorded so far — the conflict graph grows with the execution, so the
// per-section cost is linear in history where OCEP's domain-pruned search
// is not.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "poet/event_store.h"

namespace ocep::baseline {

class ConflictGraphDetector {
 public:
  struct Violation {
    EventId first_enter;   ///< earlier-recorded section
    EventId second_enter;  ///< the section that completed now
  };
  using Callback = std::function<void(const Violation&)>;

  ConflictGraphDetector(const EventStore& store, Symbol enter_type,
                        Symbol exit_type, Callback on_violation = nullptr);

  /// Feeds one event (already in the store), in arrival order.
  void observe(const Event& event);

  [[nodiscard]] std::size_t sections() const noexcept {
    return sections_.size();
  }
  [[nodiscard]] std::size_t violations() const noexcept {
    return violations_;
  }
  /// Concurrency edges of the conflict graph found so far.
  [[nodiscard]] const std::vector<Violation>& edges() const noexcept {
    return edges_;
  }

 private:
  struct Section {
    EventId enter;
    EventId exit;
  };

  const EventStore& store_;
  Symbol enter_type_;
  Symbol exit_type_;
  Callback on_violation_;
  std::vector<Section> sections_;           // completed sections, in order
  std::vector<EventId> open_enter_;         // per trace, pending enter
  bool initialized_ = false;
  std::vector<Violation> edges_;
  std::size_t violations_ = 0;
};

}  // namespace ocep::baseline
