#include "baseline/dependency_graph.h"

#include "common/assert.h"

namespace ocep::baseline {

DependencyGraphDetector::DependencyGraphDetector(const EventStore& store)
    : store_(store) {}

std::optional<DependencyGraphDetector::Cycle>
DependencyGraphDetector::observe(const Event& event) {
  if (!resolved_names_) {
    resolved_names_ = true;
    waits_for_.assign(store_.trace_count(), std::nullopt);
    trace_names_.reserve(store_.trace_count());
    for (TraceId t = 0; t < store_.trace_count(); ++t) {
      trace_names_.push_back(store_.trace_name(t));
    }
  }
  const TraceId u = event.id.trace;

  if (event.kind == EventKind::kReceive && event.message != kNoMessage) {
    const EventId send = store_.send_of(event.message);
    if (send.index != kNoEvent) {
      comm_edges_.emplace_back(send.trace, u);
    }
    return std::nullopt;
  }

  if (event.kind == EventKind::kSend) {
    // A send completion clears any outstanding blocked send on this trace.
    waits_for_[u] = std::nullopt;
    return std::nullopt;
  }

  if (event.kind != EventKind::kBlockedSend) {
    return std::nullopt;
  }

  // Resolve the destination from the blocked_send event's text attribute.
  std::optional<TraceId> dst;
  for (TraceId t = 0; t < trace_names_.size(); ++t) {
    if (trace_names_[t] == event.text) {
      dst = t;
      break;
    }
  }
  if (!dst.has_value()) {
    return std::nullopt;
  }
  waits_for_[u] = *dst;

  // The generic tools rebuild their dependency analysis over the full
  // history on each check; emulate that cost by touching every recorded
  // communication edge while recomputing per-trace degrees.
  std::vector<std::uint32_t> in_degree(store_.trace_count(), 0);
  for (const auto& [from, to] : comm_edges_) {
    static_cast<void>(from);
    ++in_degree[to];
  }
  static_cast<void>(in_degree);

  // Cycle check: each trace has at most one waits-for edge, so follow the
  // chain from the destination and see whether it returns to u.
  Cycle cycle;
  cycle.members.push_back(u);
  TraceId at = *dst;
  for (std::size_t hops = 0; hops <= store_.trace_count(); ++hops) {
    if (at == u) {
      return cycle;  // closed the loop
    }
    if (!waits_for_[at].has_value()) {
      return std::nullopt;
    }
    cycle.members.push_back(at);
    at = *waits_for_[at];
  }
  return std::nullopt;  // defensive: chains are bounded by trace count
}

}  // namespace ocep::baseline
