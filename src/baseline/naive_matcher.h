// Exhaustive reference matcher.
//
// Enumerates every complete match of a compiled pattern over a stored
// computation by brute force — no domain restriction, no backjumping, no
// subset: the ground truth the property tests compare OCEP against, and
// the "report all matches" strawman whose cost motivates the
// representative subset (§IV-B).
#pragma once

#include <vector>

#include "core/subset.h"
#include "pattern/compiled.h"
#include "poet/event_store.h"

namespace ocep::baseline {

struct NaiveOptions {
  /// Stop after this many matches (0 = unlimited).  The number of matches
  /// can be combinatorial; tests and benches should cap it.
  std::size_t max_matches = 0;
};

/// All matches, in leaf-major enumeration order.
[[nodiscard]] std::vector<Match> enumerate_matches(
    const EventStore& store, const pattern::CompiledPattern& pattern,
    const NaiveOptions& options = {});

/// The coverage bitmap `covered[leaf * traces + trace]`: true when some
/// complete match binds `leaf` on `trace`.  This is the set a
/// representative subset must cover (§IV-B).
[[nodiscard]] std::vector<bool> coverage(
    const EventStore& store, const pattern::CompiledPattern& pattern);

/// Checks a single candidate match against every constraint and attribute
/// of the pattern (used to validate reported matches for soundness).
[[nodiscard]] bool is_valid_match(const EventStore& store,
                                  const pattern::CompiledPattern& pattern,
                                  const Match& match);

/// Brute-force Fig-1 limited precedence: a -> b holds and no event whose
/// static attributes match `spec` lies causally between a and b.
[[nodiscard]] bool limited_precedence_holds(const EventStore& store,
                                            const pattern::Leaf& spec,
                                            EventId a, EventId b);

}  // namespace ocep::baseline
