// Sliding-window matcher (the §II / Fig 3 comparison point).
//
// Keeps only the last `window` events and, on each arrival, enumerates
// matches among them.  Simple and bounded, but suffers the omission
// problem the paper illustrates in Fig 3: a match whose constituent events
// span more than one window is silently lost.  The paper sizes the window
// at n^2 events (n = traces).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "core/subset.h"
#include "pattern/compiled.h"
#include "poet/event_store.h"

namespace ocep::baseline {

class WindowMatcher {
 public:
  using Callback = std::function<void(const Match&)>;

  /// `window == 0` sizes the window as traces^2 on first use.
  WindowMatcher(const EventStore& store, pattern::CompiledPattern pattern,
                std::size_t window = 0, Callback on_match = nullptr);

  /// Feeds one event (already in the store), in arrival order.
  void observe(const Event& event);

  /// Matches reported so far (deduplicated).
  [[nodiscard]] const std::vector<Match>& matches() const noexcept {
    return matches_;
  }

  [[nodiscard]] std::size_t window_size() const noexcept { return window_; }

 private:
  void search(std::uint32_t leaf, std::vector<EventId>& binding,
              std::vector<Symbol>& var_value, std::vector<bool>& var_bound,
              EventId anchor, std::uint32_t anchor_leaf);
  [[nodiscard]] bool accepts(const pattern::Leaf& spec,
                             const Event& event) const;

  const EventStore& store_;
  pattern::CompiledPattern pattern_;
  std::size_t window_ = 0;
  Callback on_match_;
  std::deque<EventId> events_;  // the window, oldest first
  std::vector<Match> matches_;
  std::vector<bool> is_terminating_;
};

}  // namespace ocep::baseline
