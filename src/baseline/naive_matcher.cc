#include "baseline/naive_matcher.h"

#include <optional>

#include "common/assert.h"

namespace ocep::baseline {
namespace {

bool static_accepts(const EventStore& store, const pattern::Leaf& spec,
                    const Event& event) {
  using Kind = pattern::Attr::Kind;
  if (spec.type.kind == Kind::kLiteral && spec.type.literal != event.type) {
    return false;
  }
  if (spec.text.kind == Kind::kLiteral && spec.text.literal != event.text) {
    return false;
  }
  if (spec.process.kind == Kind::kLiteral &&
      spec.process.literal != store.trace_name(event.id.trace)) {
    return false;
  }
  return true;
}

/// Shared recursive enumerator.  Calls `emit` for every complete match;
/// stops when emit returns false.
class Enumerator {
 public:
  Enumerator(const EventStore& store, const pattern::CompiledPattern& pattern)
      : store_(store), pattern_(pattern) {
    binding_.assign(pattern_.size(), EventId{});
    var_value_.assign(pattern_.variable_count, kEmptySymbol);
    var_bound_.assign(pattern_.variable_count, false);
  }

  template <typename Emit>
  void run(Emit&& emit) {
    recurse(0, emit);
  }

 private:
  template <typename Emit>
  bool recurse(std::uint32_t leaf, Emit& emit) {  // false = stop everything
    if (leaf == pattern_.size()) {
      Match match;
      match.bindings = binding_;
      return emit(match);
    }
    const pattern::Leaf& spec = pattern_.leaves[leaf];
    for (TraceId t = 0; t < store_.trace_count(); ++t) {
      for (EventIndex i = 1; i <= store_.trace_size(t); ++i) {
        const EventId id{t, i};
        const Event& event = store_.event(id);
        if (!accepts_static(spec, event)) {
          continue;
        }
        if (!constraints_hold(leaf, id)) {
          continue;
        }
        std::vector<std::uint32_t> trail;
        if (!bind_vars(spec, event, trail)) {
          unbind(trail);
          continue;
        }
        binding_[leaf] = id;
        const bool keep_going = recurse(leaf + 1, emit);
        binding_[leaf] = EventId{};
        unbind(trail);
        if (!keep_going) {
          return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool accepts_static(const pattern::Leaf& spec,
                                    const Event& event) const {
    return static_accepts(store_, spec, event);
  }

  [[nodiscard]] bool constraints_hold(std::uint32_t leaf, EventId id) const {
    for (const pattern::Constraint& c : pattern_.constraints) {
      EventId a{}, b{};
      if (c.a == leaf && binding_[c.b].index != kNoEvent) {
        a = id;
        b = binding_[c.b];
      } else if (c.b == leaf && binding_[c.a].index != kNoEvent) {
        a = binding_[c.a];
        b = id;
      } else {
        continue;
      }
      switch (c.op) {
        case pattern::ConstraintOp::kBefore:
          if (!store_.happens_before(a, b)) {
            return false;
          }
          break;
        case pattern::ConstraintOp::kBeforeLimited:
          if (!limited_precedence_holds(store_, pattern_.leaves[c.a], a, b)) {
            return false;
          }
          break;
        case pattern::ConstraintOp::kConcurrent:
          if (store_.relate(a, b) != Relation::kConcurrent) {
            return false;
          }
          break;
        case pattern::ConstraintOp::kPartner: {
          const Event& send = store_.event(a);
          const Event& recv = store_.event(b);
          if (send.kind != EventKind::kSend ||
              recv.kind != EventKind::kReceive ||
              send.message == kNoMessage || send.message != recv.message) {
            return false;
          }
          break;
        }
      }
    }
    return true;
  }

  bool bind_vars(const pattern::Leaf& spec, const Event& event,
                 std::vector<std::uint32_t>& trail) {
    const Symbol values[3] = {store_.trace_name(event.id.trace), event.type,
                              event.text};
    const pattern::Attr* attrs[3] = {&spec.process, &spec.type, &spec.text};
    for (int i = 0; i < 3; ++i) {
      if (attrs[i]->kind != pattern::Attr::Kind::kVariable) {
        continue;
      }
      const std::uint32_t var = attrs[i]->variable;
      if (var_bound_[var]) {
        if (var_value_[var] != values[i]) {
          return false;
        }
        continue;
      }
      var_value_[var] = values[i];
      var_bound_[var] = true;
      trail.push_back(var);
    }
    return true;
  }

  void unbind(const std::vector<std::uint32_t>& trail) {
    for (const std::uint32_t var : trail) {
      var_bound_[var] = false;
    }
  }

  const EventStore& store_;
  const pattern::CompiledPattern& pattern_;
  std::vector<EventId> binding_;
  std::vector<Symbol> var_value_;
  std::vector<bool> var_bound_;
};

}  // namespace

std::vector<Match> enumerate_matches(const EventStore& store,
                                     const pattern::CompiledPattern& pattern,
                                     const NaiveOptions& options) {
  std::vector<Match> out;
  Enumerator enumerator(store, pattern);
  enumerator.run([&](const Match& match) {
    out.push_back(match);
    return options.max_matches == 0 || out.size() < options.max_matches;
  });
  return out;
}

std::vector<bool> coverage(const EventStore& store,
                           const pattern::CompiledPattern& pattern) {
  const std::size_t traces = store.trace_count();
  std::vector<bool> covered(pattern.size() * traces, false);
  Enumerator enumerator(store, pattern);
  enumerator.run([&](const Match& match) {
    for (std::size_t leaf = 0; leaf < match.bindings.size(); ++leaf) {
      covered[leaf * traces + match.bindings[leaf].trace] = true;
    }
    return true;
  });
  return covered;
}

bool is_valid_match(const EventStore& store,
                    const pattern::CompiledPattern& pattern,
                    const Match& match) {
  OCEP_ASSERT(match.bindings.size() == pattern.size());
  using Kind = pattern::Attr::Kind;
  std::vector<Symbol> var_value(pattern.variable_count, kEmptySymbol);
  std::vector<bool> var_bound(pattern.variable_count, false);

  for (std::uint32_t leaf = 0; leaf < pattern.size(); ++leaf) {
    const EventId id = match.bindings[leaf];
    if (id.index == kNoEvent || id.trace >= store.trace_count() ||
        id.index > store.trace_size(id.trace)) {
      return false;
    }
    const Event& event = store.event(id);
    const pattern::Leaf& spec = pattern.leaves[leaf];
    const Symbol values[3] = {store.trace_name(id.trace), event.type,
                              event.text};
    const pattern::Attr* attrs[3] = {&spec.process, &spec.type, &spec.text};
    for (int i = 0; i < 3; ++i) {
      switch (attrs[i]->kind) {
        case Kind::kWildcard:
          break;
        case Kind::kLiteral:
          if (attrs[i]->literal != values[i]) {
            return false;
          }
          break;
        case Kind::kVariable: {
          const std::uint32_t var = attrs[i]->variable;
          if (var_bound[var] && var_value[var] != values[i]) {
            return false;
          }
          var_value[var] = values[i];
          var_bound[var] = true;
          break;
        }
      }
    }
  }

  for (const pattern::Constraint& c : pattern.constraints) {
    const EventId a = match.bindings[c.a];
    const EventId b = match.bindings[c.b];
    switch (c.op) {
      case pattern::ConstraintOp::kBefore:
        if (!store.happens_before(a, b)) {
          return false;
        }
        break;
      case pattern::ConstraintOp::kBeforeLimited:
        if (!limited_precedence_holds(store, pattern.leaves[c.a], a, b)) {
          return false;
        }
        break;
      case pattern::ConstraintOp::kConcurrent:
        if (store.relate(a, b) != Relation::kConcurrent) {
          return false;
        }
        break;
      case pattern::ConstraintOp::kPartner: {
        const Event& send = store.event(a);
        const Event& recv = store.event(b);
        if (send.kind != EventKind::kSend ||
            recv.kind != EventKind::kReceive ||
            send.message == kNoMessage || send.message != recv.message) {
          return false;
        }
        break;
      }
    }
  }
  return true;
}

bool limited_precedence_holds(const EventStore& store,
                              const pattern::Leaf& spec, EventId a,
                              EventId b) {
  if (!store.happens_before(a, b)) {
    return false;
  }
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      const EventId x{t, i};
      if (x == a || x == b) {
        continue;
      }
      if (static_accepts(store, spec, store.event(x)) &&
          store.happens_before(a, x) && store.happens_before(x, b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ocep::baseline
