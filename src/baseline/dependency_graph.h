// Dependency-graph deadlock detector (the §V-C.1 comparison: "a commonly
// used method for detecting such a deadlock is to build a dependency graph
// and check for cycles" [2]; the paper measures such tools in the tens of
// seconds and notes "building and maintaining a dependency graph is
// costly").
//
// A kBlockedSend adds a waits-for edge blocked-trace -> destination; the
// next send completion on that trace removes it.  Faithful to the generic
// tools the paper cites, every check rebuilds its analysis structure from
// the full communication-dependency history collected so far, so the
// per-detection cost grows with the execution length — the behaviour OCEP
// is orders of magnitude faster than.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "poet/event_store.h"

namespace ocep::baseline {

class DependencyGraphDetector {
 public:
  explicit DependencyGraphDetector(const EventStore& store);

  struct Cycle {
    std::vector<TraceId> members;  ///< in waits-for order
  };

  /// Feeds one event (already in the store), in arrival order.  Returns a
  /// cycle when the new event closed one (deadlock detected).
  std::optional<Cycle> observe(const Event& event);

  [[nodiscard]] std::size_t dependency_edges() const noexcept {
    return comm_edges_.size();
  }

 private:
  const EventStore& store_;
  /// Each trace has at most one outstanding blocking send.
  std::vector<std::optional<TraceId>> waits_for_;
  /// Full communication dependency history (sender, receiver) pairs, one
  /// per delivered message; rescanned on every check like the generic
  /// dependency-graph tools rebuild their analysis.
  std::vector<std::pair<TraceId, TraceId>> comm_edges_;
  Symbol blocked_send_type_ = kEmptySymbol;
  bool resolved_names_ = false;
  std::vector<Symbol> trace_names_;
};

}  // namespace ocep::baseline
