#include "baseline/conflict_graph.h"

#include "common/assert.h"

namespace ocep::baseline {

ConflictGraphDetector::ConflictGraphDetector(const EventStore& store,
                                             Symbol enter_type,
                                             Symbol exit_type,
                                             Callback on_violation)
    : store_(store),
      enter_type_(enter_type),
      exit_type_(exit_type),
      on_violation_(std::move(on_violation)) {}

void ConflictGraphDetector::observe(const Event& event) {
  if (!initialized_) {
    initialized_ = true;
    open_enter_.assign(store_.trace_count(), EventId{});
  }
  const TraceId t = event.id.trace;
  if (event.type == enter_type_) {
    open_enter_[t] = event.id;
    return;
  }
  if (event.type != exit_type_ || open_enter_[t].index == kNoEvent) {
    return;
  }
  const Section section{open_enter_[t], event.id};
  open_enter_[t] = EventId{};

  // Compare the completed section against every section seen so far: two
  // sections conflict when their enters are concurrent (no causal chain
  // through the semaphore trace ordered them).
  for (const Section& other : sections_) {
    if (other.enter.trace == section.enter.trace) {
      continue;  // same trace: totally ordered
    }
    if (store_.relate(other.enter, section.enter) == Relation::kConcurrent) {
      const Violation violation{other.enter, section.enter};
      edges_.push_back(violation);
      ++violations_;
      if (on_violation_) {
        on_violation_(violation);
      }
    }
  }
  sections_.push_back(section);
}

}  // namespace ocep::baseline
