#include "baseline/window_matcher.h"

#include "baseline/naive_matcher.h"
#include "common/assert.h"

namespace ocep::baseline {

WindowMatcher::WindowMatcher(const EventStore& store,
                             pattern::CompiledPattern pattern,
                             std::size_t window, Callback on_match)
    : store_(store),
      pattern_(std::move(pattern)),
      window_(window),
      on_match_(std::move(on_match)) {
  is_terminating_.assign(pattern_.size(), false);
  for (const std::uint32_t leaf : pattern_.terminating) {
    is_terminating_[leaf] = true;
  }
}

bool WindowMatcher::accepts(const pattern::Leaf& spec,
                            const Event& event) const {
  using Kind = pattern::Attr::Kind;
  if (spec.type.kind == Kind::kLiteral && spec.type.literal != event.type) {
    return false;
  }
  if (spec.text.kind == Kind::kLiteral && spec.text.literal != event.text) {
    return false;
  }
  if (spec.process.kind == Kind::kLiteral &&
      spec.process.literal != store_.trace_name(event.id.trace)) {
    return false;
  }
  return true;
}

void WindowMatcher::observe(const Event& event) {
  if (window_ == 0) {
    window_ = store_.trace_count() * store_.trace_count();  // paper's n^2
  }
  events_.push_back(event.id);
  while (events_.size() > window_) {
    events_.pop_front();
  }

  for (std::uint32_t anchor = 0; anchor < pattern_.size(); ++anchor) {
    if (!is_terminating_[anchor] ||
        !accepts(pattern_.leaves[anchor], event)) {
      continue;
    }
    std::vector<EventId> binding(pattern_.size(), EventId{});
    std::vector<Symbol> var_value(pattern_.variable_count, kEmptySymbol);
    std::vector<bool> var_bound(pattern_.variable_count, false);
    binding[anchor] = event.id;
    // Bind the anchor's attribute variables.
    bool ok = true;
    {
      const pattern::Leaf& spec = pattern_.leaves[anchor];
      const Symbol values[3] = {store_.trace_name(event.id.trace),
                                event.type, event.text};
      const pattern::Attr* attrs[3] = {&spec.process, &spec.type, &spec.text};
      for (int i = 0; i < 3 && ok; ++i) {
        if (attrs[i]->kind == pattern::Attr::Kind::kVariable) {
          const std::uint32_t var = attrs[i]->variable;
          if (var_bound[var] && var_value[var] != values[i]) {
            ok = false;
          } else {
            var_value[var] = values[i];
            var_bound[var] = true;
          }
        }
      }
    }
    if (ok) {
      search(0, binding, var_value, var_bound, event.id, anchor);
    }
  }
}

void WindowMatcher::search(std::uint32_t leaf, std::vector<EventId>& binding,
                           std::vector<Symbol>& var_value,
                           std::vector<bool>& var_bound, EventId anchor,
                           std::uint32_t anchor_leaf) {
  if (leaf == pattern_.size()) {
    Match match;
    match.bindings = binding;
    if (!is_valid_match(store_, pattern_, match)) {
      return;  // defensive; enumeration should only build valid ones
    }
    for (const Match& existing : matches_) {
      if (existing.bindings == match.bindings) {
        return;
      }
    }
    matches_.push_back(match);
    if (on_match_) {
      on_match_(match);
    }
    return;
  }
  if (leaf == anchor_leaf) {
    search(leaf + 1, binding, var_value, var_bound, anchor, anchor_leaf);
    return;
  }
  const pattern::Leaf& spec = pattern_.leaves[leaf];
  for (const EventId id : events_) {
    const Event& event = store_.event(id);
    if (!accepts(spec, event)) {
      continue;
    }
    // Check constraints against already-bound leaves.
    bool ok = true;
    for (const pattern::Constraint& c : pattern_.constraints) {
      EventId a{}, b{};
      if (c.a == leaf && binding[c.b].index != kNoEvent) {
        a = id;
        b = binding[c.b];
      } else if (c.b == leaf && binding[c.a].index != kNoEvent) {
        a = binding[c.a];
        b = id;
      } else {
        continue;
      }
      switch (c.op) {
        case pattern::ConstraintOp::kBefore:
          ok = store_.happens_before(a, b);
          break;
        case pattern::ConstraintOp::kBeforeLimited:
          ok = limited_precedence_holds(store_, pattern_.leaves[c.a], a, b);
          break;
        case pattern::ConstraintOp::kConcurrent:
          ok = store_.relate(a, b) == Relation::kConcurrent;
          break;
        case pattern::ConstraintOp::kPartner: {
          const Event& send = store_.event(a);
          const Event& recv = store_.event(b);
          ok = send.kind == EventKind::kSend &&
               recv.kind == EventKind::kReceive &&
               send.message != kNoMessage && send.message == recv.message;
          break;
        }
      }
      if (!ok) {
        break;
      }
    }
    if (!ok) {
      continue;
    }
    // Bind attribute variables.
    std::vector<std::uint32_t> trail;
    const Symbol values[3] = {store_.trace_name(id.trace), event.type,
                              event.text};
    const pattern::Attr* attrs[3] = {&spec.process, &spec.type, &spec.text};
    bool bound_ok = true;
    for (int i = 0; i < 3 && bound_ok; ++i) {
      if (attrs[i]->kind == pattern::Attr::Kind::kVariable) {
        const std::uint32_t var = attrs[i]->variable;
        if (var_bound[var]) {
          bound_ok = var_value[var] == values[i];
        } else {
          var_value[var] = values[i];
          var_bound[var] = true;
          trail.push_back(var);
        }
      }
    }
    if (bound_ok) {
      binding[leaf] = id;
      search(leaf + 1, binding, var_value, var_bound, anchor, anchor_leaf);
      binding[leaf] = EventId{};
    }
    for (const std::uint32_t var : trail) {
      var_bound[var] = false;
    }
  }
}

}  // namespace ocep::baseline
