// Abstract syntax of a pattern definition (paper §III-A/C, §IV-A).
//
// A definition consists of event-class definitions, optional event-variable
// declarations, and the pattern expression itself:
//
//   Synch    := [$1, Synch_Leader, $2];
//   Snapshot := [$2, Take_Snapshot, ''];
//   Snapshot $Diff;
//   pattern  := (Synch -> $Diff) && ($Diff -> Forward);
//
// Attributes are [process, type, text]: each is an exact-match literal, an
// empty wild-card, or a variable enforcing equality across the pattern.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ocep::pattern {

/// One of the three attribute positions of a class definition.
struct AstAttr {
  enum class Kind : std::uint8_t { kWildcard, kLiteral, kVariable };
  Kind kind = Kind::kWildcard;
  std::string value;  ///< literal text or variable name
};

struct AstClassDef {
  std::string name;
  AstAttr process;
  AstAttr type;
  AstAttr text;
  int line = 1;
};

/// `Class $Var;` — declares an event variable: every occurrence of $Var in
/// the pattern must bind to the same matched event of that class.
struct AstVarDecl {
  std::string class_name;
  std::string var_name;
  int line = 1;
};

/// Causal operators usable between (compound) operands.
enum class AstOp : std::uint8_t {
  kBefore,
  kBeforeLimited,  ///< -lim->  Fig 1 limited precedence
  kConcurrent,
  kPartner,
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// An operand occurrence: a class name (each occurrence is a fresh leaf) or
/// an event variable (all occurrences share one leaf).
struct AstOperand {
  bool is_variable = false;
  std::string name;
  int line = 1;
};

/// Expression forms: operand | chain of causal ops | conjunction.
struct AstChain {
  /// operands.size() == ops.size() + 1; each adjacent pair is related by
  /// the op between them, e.g. A -> B || C.
  std::vector<AstExprPtr> operands;
  std::vector<AstOp> ops;
};

struct AstConj {
  std::vector<AstExprPtr> terms;
};

struct AstExpr {
  std::variant<AstOperand, AstChain, AstConj> node;
};

struct AstProgram {
  std::vector<AstClassDef> classes;
  std::vector<AstVarDecl> variables;
  AstExprPtr pattern;
};

}  // namespace ocep::pattern
