#include "pattern/print.h"

#include <variant>

namespace ocep::pattern {
namespace {

std::string print_attr(const AstAttr& attr) {
  switch (attr.kind) {
    case AstAttr::Kind::kWildcard: return "''";
    case AstAttr::Kind::kVariable: return "$" + attr.value;
    case AstAttr::Kind::kLiteral: break;
  }
  return "'" + attr.value + "'";
}

const char* op_text(AstOp op) {
  switch (op) {
    case AstOp::kBefore: return " -> ";
    case AstOp::kBeforeLimited: return " -lim-> ";
    case AstOp::kConcurrent: return " || ";
    case AstOp::kPartner: return " <-> ";
  }
  return " -> ";
}

/// Prints `expr`, parenthesizing when it is structurally below an
/// operand position (the grammar only allows bare names there).
void print_expr(const AstExpr& expr, bool as_operand, std::string& out) {
  if (const auto* operand = std::get_if<AstOperand>(&expr.node)) {
    if (operand->is_variable) {
      out += "$";
    }
    out += operand->name;
    return;
  }
  if (as_operand) {
    out += "(";
  }
  if (const auto* chain = std::get_if<AstChain>(&expr.node)) {
    for (std::size_t i = 0; i < chain->operands.size(); ++i) {
      if (i > 0) {
        out += op_text(chain->ops[i - 1]);
      }
      print_expr(*chain->operands[i], /*as_operand=*/true, out);
    }
  } else {
    const auto& conj = std::get<AstConj>(expr.node);
    for (std::size_t i = 0; i < conj.terms.size(); ++i) {
      if (i > 0) {
        out += " && ";
      }
      // Conjunction terms are chains in the grammar; a nested
      // conjunction must re-enter through parentheses.
      const bool nested = std::holds_alternative<AstConj>(conj.terms[i]->node);
      print_expr(*conj.terms[i], nested, out);
    }
  }
  if (as_operand) {
    out += ")";
  }
}

}  // namespace

std::string print(const AstExpr& expr) {
  std::string out;
  print_expr(expr, /*as_operand=*/false, out);
  return out;
}

std::string print(const AstProgram& program) {
  std::string out;
  for (const AstClassDef& def : program.classes) {
    out += def.name + " := [" + print_attr(def.process) + ", " +
           print_attr(def.type) + ", " + print_attr(def.text) + "];\n";
  }
  for (const AstVarDecl& decl : program.variables) {
    out += decl.class_name + " $" + decl.var_name + ";\n";
  }
  out += "pattern := " + print(*program.pattern) + ";\n";
  return out;
}

}  // namespace ocep::pattern
