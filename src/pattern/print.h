// Serializes a parsed pattern back to source text.
//
// The printed form is canonical: attributes are always quoted, one class
// definition or variable declaration per line, and parentheses are
// emitted exactly where the grammar needs them.  parse(print(ast))
// yields a structurally identical program, so print-then-parse is the
// round-trip check the fuzz tests rely on.
#pragma once

#include <string>

#include "pattern/ast.h"

namespace ocep::pattern {

/// Prints one pattern expression (without the trailing ';').
[[nodiscard]] std::string print(const AstExpr& expr);

/// Prints a complete program: class definitions, variable declarations,
/// and the `pattern := ...;` line.
[[nodiscard]] std::string print(const AstProgram& program);

}  // namespace ocep::pattern
