// Compiled pattern: the flat leaf/constraint form the matcher executes
// (the paper's pattern tree of Fig 2, §IV-A, flattened).
//
// Each operand occurrence in the pattern expression becomes one leaf,
// except that every occurrence of an event variable shares a single leaf
// (§III-C).  Operators between parenthesized sub-expressions expand
// pairwise over the operand sets: `||` per eq. (3) (all pairs concurrent)
// and `->` as strong precedence (all pairs ordered), which keeps every
// pattern a conjunction of binary constraints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/string_pool.h"
#include "model/event.h"

namespace ocep::pattern {

/// Compiled attribute: how one of [process, type, text] constrains events.
struct Attr {
  enum class Kind : std::uint8_t { kWildcard, kLiteral, kVariable };
  Kind kind = Kind::kWildcard;
  Symbol literal = kEmptySymbol;  ///< for kLiteral
  std::uint32_t variable = 0;     ///< for kVariable: index into the binding
                                  ///< environment
};

/// A leaf of the pattern tree: one primitive-event occurrence.
struct Leaf {
  std::string class_name;  ///< for diagnostics and match reporting
  Attr process;
  Attr type;
  Attr text;
};

enum class ConstraintOp : std::uint8_t {
  kBefore,         ///< a -> b
  kBeforeLimited,  ///< a -lim-> b: a -> b and no event of a's class is
                   ///< causally between them (Fig 1)
  kConcurrent,     ///< a || b
  kPartner,        ///< a <-> b: b receives the message a sent
};

/// Binary causal constraint between leaves a and b.
struct Constraint {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  ConstraintOp op = ConstraintOp::kBefore;
};

struct CompiledPattern {
  std::vector<Leaf> leaves;
  std::vector<Constraint> constraints;
  std::uint32_t variable_count = 0;
  /// Variable names by index, for diagnostics.
  std::vector<std::string> variable_names;

  /// Leaves at which a newly arrived event can complete a match: those
  /// with no outgoing kBefore edge and not the send side of a kPartner
  /// (the receive is always delivered after the send).  §V-B's
  /// "terminating events".
  std::vector<std::uint32_t> terminating;

  [[nodiscard]] std::size_t size() const noexcept { return leaves.size(); }
};

/// Compiles pattern-definition text.  Interns literals into `pool`.
/// Throws ParseError (syntax) or PatternError (semantics: unknown class,
/// '<->' between compound operands, no terminating leaf, ...).
[[nodiscard]] CompiledPattern compile(std::string_view source,
                                      StringPool& pool);

}  // namespace ocep::pattern
