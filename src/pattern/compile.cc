#include <map>
#include <set>
#include <string>
#include <utility>
#include <variant>

#include "common/error.h"
#include "pattern/compiled.h"
#include "pattern/parser.h"

namespace ocep::pattern {
namespace {

class Compiler {
 public:
  Compiler(const AstProgram& program, StringPool& pool)
      : program_(program), pool_(pool) {}

  CompiledPattern run() {
    index_classes();
    index_event_variables();
    const std::vector<std::uint32_t> roots = expr(*program_.pattern);
    static_cast<void>(roots);
    dedupe_constraints();
    find_terminating();
    out_.variable_count =
        static_cast<std::uint32_t>(out_.variable_names.size());
    if (out_.leaves.empty()) {
      throw PatternError("pattern has no event occurrences");
    }
    return std::move(out_);
  }

 private:
  void index_classes() {
    for (const AstClassDef& def : program_.classes) {
      if (!classes_.emplace(def.name, &def).second) {
        throw PatternError("duplicate class definition '" + def.name + "'");
      }
    }
  }

  void index_event_variables() {
    for (const AstVarDecl& decl : program_.variables) {
      if (classes_.find(decl.class_name) == classes_.end()) {
        throw PatternError("event variable $" + decl.var_name +
                           " declares unknown class '" + decl.class_name +
                           "'");
      }
      if (!event_vars_.emplace(decl.var_name, decl.class_name).second) {
        throw PatternError("duplicate event variable $" + decl.var_name);
      }
    }
  }

  Attr compile_attr(const AstAttr& attr) {
    Attr out;
    switch (attr.kind) {
      case AstAttr::Kind::kWildcard:
        out.kind = Attr::Kind::kWildcard;
        break;
      case AstAttr::Kind::kLiteral:
        out.kind = Attr::Kind::kLiteral;
        out.literal = pool_.intern(attr.value);
        break;
      case AstAttr::Kind::kVariable:
        out.kind = Attr::Kind::kVariable;
        out.variable = variable_id(attr.value);
        break;
    }
    return out;
  }

  std::uint32_t variable_id(const std::string& name) {
    auto [it, inserted] = attr_vars_.emplace(
        name, static_cast<std::uint32_t>(out_.variable_names.size()));
    if (inserted) {
      out_.variable_names.push_back(name);
    }
    return it->second;
  }

  std::uint32_t make_leaf(const std::string& class_name) {
    auto it = classes_.find(class_name);
    if (it == classes_.end()) {
      throw PatternError("unknown event class '" + class_name + "'");
    }
    const AstClassDef& def = *it->second;
    Leaf leaf;
    leaf.class_name = class_name;
    leaf.process = compile_attr(def.process);
    leaf.type = compile_attr(def.type);
    leaf.text = compile_attr(def.text);
    out_.leaves.push_back(std::move(leaf));
    return static_cast<std::uint32_t>(out_.leaves.size() - 1);
  }

  /// Compiles a sub-expression; returns the set of leaves it denotes (the
  /// compound event).
  std::vector<std::uint32_t> expr(const AstExpr& node) {
    if (const auto* operand = std::get_if<AstOperand>(&node.node)) {
      if (operand->is_variable) {
        auto decl = event_vars_.find(operand->name);
        if (decl == event_vars_.end()) {
          throw PatternError("event variable $" + operand->name +
                             " used without declaration");
        }
        auto bound = var_leaves_.find(operand->name);
        if (bound == var_leaves_.end()) {
          bound = var_leaves_
                      .emplace(operand->name, make_leaf(decl->second))
                      .first;
        }
        return {bound->second};
      }
      return {make_leaf(operand->name)};
    }
    if (const auto* chain = std::get_if<AstChain>(&node.node)) {
      std::vector<std::uint32_t> all;
      std::vector<std::uint32_t> prev = expr(*chain->operands.front());
      all = prev;
      for (std::size_t i = 0; i < chain->ops.size(); ++i) {
        std::vector<std::uint32_t> next = expr(*chain->operands[i + 1]);
        relate(prev, next, chain->ops[i]);
        all.insert(all.end(), next.begin(), next.end());
        prev = std::move(next);
      }
      return all;
    }
    const auto& conj = std::get<AstConj>(node.node);
    std::vector<std::uint32_t> all;
    for (const AstExprPtr& term : conj.terms) {
      const std::vector<std::uint32_t> leaves = expr(*term);
      all.insert(all.end(), leaves.begin(), leaves.end());
    }
    return all;
  }

  void relate(const std::vector<std::uint32_t>& a,
              const std::vector<std::uint32_t>& b, AstOp op) {
    if (op == AstOp::kPartner && (a.size() != 1 || b.size() != 1)) {
      throw PatternError("'<->' relates single events, not compound ones");
    }
    for (const std::uint32_t la : a) {
      for (const std::uint32_t lb : b) {
        if (la == lb) {
          throw PatternError("constraint relates a leaf to itself (via $" +
                             out_.leaves[la].class_name + ")");
        }
        Constraint c;
        c.a = la;
        c.b = lb;
        switch (op) {
          case AstOp::kBefore: c.op = ConstraintOp::kBefore; break;
          case AstOp::kBeforeLimited:
            c.op = ConstraintOp::kBeforeLimited;
            break;
          case AstOp::kConcurrent: c.op = ConstraintOp::kConcurrent; break;
          case AstOp::kPartner: c.op = ConstraintOp::kPartner; break;
        }
        out_.constraints.push_back(c);
      }
    }
  }

  void dedupe_constraints() {
    std::set<std::tuple<std::uint32_t, std::uint32_t, ConstraintOp>> seen;
    std::vector<Constraint> unique;
    for (const Constraint& c : out_.constraints) {
      // Concurrency is symmetric: normalize the pair.
      Constraint n = c;
      if (n.op == ConstraintOp::kConcurrent && n.a > n.b) {
        std::swap(n.a, n.b);
      }
      if (seen.emplace(n.a, n.b, n.op).second) {
        unique.push_back(n);
      }
    }
    out_.constraints = std::move(unique);
  }

  void find_terminating() {
    std::vector<bool> has_successor(out_.leaves.size(), false);
    for (const Constraint& c : out_.constraints) {
      if (c.op == ConstraintOp::kBefore ||
          c.op == ConstraintOp::kBeforeLimited ||
          c.op == ConstraintOp::kPartner) {
        has_successor[c.a] = true;  // a -> b and send -> receive
      }
    }
    for (std::uint32_t i = 0; i < out_.leaves.size(); ++i) {
      if (!has_successor[i]) {
        out_.terminating.push_back(i);
      }
    }
    if (out_.terminating.empty()) {
      throw PatternError(
          "pattern has a happens-before cycle: no leaf can terminate a "
          "match");
    }
  }

  const AstProgram& program_;
  StringPool& pool_;
  CompiledPattern out_;
  std::map<std::string, const AstClassDef*> classes_;
  std::map<std::string, std::string> event_vars_;   // $var -> class
  std::map<std::string, std::uint32_t> var_leaves_;  // $var -> leaf id
  std::map<std::string, std::uint32_t> attr_vars_;   // $attr -> variable id
};

}  // namespace

CompiledPattern compile(std::string_view source, StringPool& pool) {
  const AstProgram program = parse(source);
  return Compiler(program, pool).run();
}

}  // namespace ocep::pattern
