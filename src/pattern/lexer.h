// Lexer for the pattern language.
//
// Comments run from '#' to end of line.  String literals use single quotes
// and may be empty (the wild-card attribute).  The paper's mathematical
// glyphs have ASCII spellings: -> (happens-before), || (concurrent),
// <-> (partner), && (conjunction).
#pragma once

#include <string_view>
#include <vector>

#include "pattern/token.h"

namespace ocep::pattern {

/// Tokenizes the whole input.  Throws ocep::ParseError on illegal input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace ocep::pattern
