// Tokens of the OCEP pattern language (paper §III-A/B/C).
#pragma once

#include <cstdint>
#include <string>

namespace ocep::pattern {

enum class TokenKind : std::uint8_t {
  kIdent,     ///< class names, keywords ("pattern")
  kVariable,  ///< $name or $1 — event or attribute variable
  kString,    ///< 'literal text' (may be empty: wild-card)
  kAssign,    ///< :=
  kArrow,     ///< ->   happens-before
  kLimArrow,  ///< -lim->  limited precedence (Fig 1): a -> b with no event
              ///<         of a's class causally between them
  kConcur,    ///< ||   concurrent
  kPartner,   ///< <->  partner events of one point-to-point communication
  kAnd,       ///< &&   conjunction (the paper's wedge)
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< identifier / variable name / string contents
  int line = 1;
  int column = 1;
};

/// Human-readable token-kind name for diagnostics.
[[nodiscard]] const char* token_kind_name(TokenKind kind) noexcept;

}  // namespace ocep::pattern
