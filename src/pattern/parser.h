// Recursive-descent parser for the pattern language.
#pragma once

#include <string_view>

#include "pattern/ast.h"

namespace ocep::pattern {

/// Parses a complete pattern definition.  Throws ocep::ParseError with
/// line/column information on malformed input.
[[nodiscard]] AstProgram parse(std::string_view source);

}  // namespace ocep::pattern
