#include "pattern/lexer.h"

#include <cctype>

#include "common/error.h"

namespace ocep::pattern {

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kString: return "string";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kLimArrow: return "'-lim->'";
    case TokenKind::kConcur: return "'||'";
    case TokenKind::kPartner: return "'<->'";
    case TokenKind::kAnd: return "'&&'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cursor(source);

  auto push = [&tokens](TokenKind kind, std::string text, int line,
                        int column) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };

  while (!cursor.done()) {
    const int line = cursor.line();
    const int column = cursor.column();
    const char c = cursor.advance();
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (!cursor.done() && cursor.peek() != '\n') {
        cursor.advance();
      }
      continue;
    }
    switch (c) {
      case '[': push(TokenKind::kLBracket, "[", line, column); continue;
      case ']': push(TokenKind::kRBracket, "]", line, column); continue;
      case '(': push(TokenKind::kLParen, "(", line, column); continue;
      case ')': push(TokenKind::kRParen, ")", line, column); continue;
      case ',': push(TokenKind::kComma, ",", line, column); continue;
      case ';': push(TokenKind::kSemicolon, ";", line, column); continue;
      default: break;
    }
    if (c == ':' && cursor.peek() == '=') {
      cursor.advance();
      push(TokenKind::kAssign, ":=", line, column);
      continue;
    }
    if (c == '-' && cursor.peek() == '>') {
      cursor.advance();
      push(TokenKind::kArrow, "->", line, column);
      continue;
    }
    if (c == '-' && cursor.peek() == 'l' && cursor.peek(1) == 'i' &&
        cursor.peek(2) == 'm' && cursor.peek(3) == '-' &&
        cursor.peek(4) == '>') {
      for (int skip = 0; skip < 5; ++skip) {
        cursor.advance();
      }
      push(TokenKind::kLimArrow, "-lim->", line, column);
      continue;
    }
    if (c == '|' && cursor.peek() == '|') {
      cursor.advance();
      push(TokenKind::kConcur, "||", line, column);
      continue;
    }
    if (c == '<' && cursor.peek() == '-' && cursor.peek(1) == '>') {
      cursor.advance();
      cursor.advance();
      push(TokenKind::kPartner, "<->", line, column);
      continue;
    }
    if (c == '&' && cursor.peek() == '&') {
      cursor.advance();
      push(TokenKind::kAnd, "&&", line, column);
      continue;
    }
    if (c == '\'') {
      std::string text;
      while (!cursor.done() && cursor.peek() != '\'') {
        if (cursor.peek() == '\n') {
          throw ParseError("unterminated string literal", line, column);
        }
        text.push_back(cursor.advance());
      }
      if (cursor.done()) {
        throw ParseError("unterminated string literal", line, column);
      }
      cursor.advance();  // closing quote
      push(TokenKind::kString, std::move(text), line, column);
      continue;
    }
    if (c == '$') {
      std::string name;
      while (!cursor.done() && is_ident_char(cursor.peek())) {
        name.push_back(cursor.advance());
      }
      if (name.empty()) {
        throw ParseError("'$' must be followed by a variable name", line,
                         column);
      }
      push(TokenKind::kVariable, std::move(name), line, column);
      continue;
    }
    if (is_ident_start(c)) {
      std::string name(1, c);
      while (!cursor.done() && is_ident_char(cursor.peek())) {
        name.push_back(cursor.advance());
      }
      push(TokenKind::kIdent, std::move(name), line, column);
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", line,
                     column);
  }
  tokens.push_back(Token{TokenKind::kEnd, "", cursor.line(), cursor.column()});
  return tokens;
}

}  // namespace ocep::pattern
