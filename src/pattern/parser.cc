#include "pattern/parser.h"

#include <utility>

#include "common/error.h"
#include "pattern/lexer.h"

namespace ocep::pattern {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  AstProgram program() {
    AstProgram out;
    while (!at(TokenKind::kEnd)) {
      if (at(TokenKind::kIdent) && peek().text == "pattern") {
        advance();
        expect(TokenKind::kAssign);
        out.pattern = conjunction();
        expect(TokenKind::kSemicolon);
        continue;
      }
      if (at(TokenKind::kIdent) && peek(1).kind == TokenKind::kAssign) {
        out.classes.push_back(class_def());
        continue;
      }
      if (at(TokenKind::kIdent) && peek(1).kind == TokenKind::kVariable) {
        AstVarDecl decl;
        decl.line = peek().line;
        decl.class_name = advance().text;
        decl.var_name = advance().text;
        expect(TokenKind::kSemicolon);
        out.variables.push_back(std::move(decl));
        continue;
      }
      fail("expected a class definition, variable declaration, or "
           "'pattern :='");
    }
    if (out.pattern == nullptr) {
      fail("missing 'pattern :=' definition");
    }
    return out;
  }

 private:
  AstClassDef class_def() {
    AstClassDef def;
    def.line = peek().line;
    def.name = expect(TokenKind::kIdent).text;
    expect(TokenKind::kAssign);
    expect(TokenKind::kLBracket);
    def.process = attr();
    expect(TokenKind::kComma);
    def.type = attr();
    expect(TokenKind::kComma);
    def.text = attr();
    expect(TokenKind::kRBracket);
    expect(TokenKind::kSemicolon);
    return def;
  }

  AstAttr attr() {
    AstAttr out;
    if (at(TokenKind::kVariable)) {
      out.kind = AstAttr::Kind::kVariable;
      out.value = advance().text;
      return out;
    }
    if (at(TokenKind::kString)) {
      const std::string text = advance().text;
      if (text.empty()) {
        out.kind = AstAttr::Kind::kWildcard;
      } else {
        out.kind = AstAttr::Kind::kLiteral;
        out.value = text;
      }
      return out;
    }
    if (at(TokenKind::kIdent)) {
      out.kind = AstAttr::Kind::kLiteral;
      out.value = advance().text;
      return out;
    }
    // Bare comma/bracket: omitted attribute is a wild-card.
    if (at(TokenKind::kComma) || at(TokenKind::kRBracket)) {
      out.kind = AstAttr::Kind::kWildcard;
      return out;
    }
    fail("expected an attribute (literal, 'text', $variable, or empty)");
  }

  // conjunction := chain { '&&' chain }
  AstExprPtr conjunction() {
    AstExprPtr first = chain();
    if (!at(TokenKind::kAnd)) {
      return first;
    }
    AstConj conj;
    conj.terms.push_back(std::move(first));
    while (at(TokenKind::kAnd)) {
      advance();
      conj.terms.push_back(chain());
    }
    auto out = std::make_unique<AstExpr>();
    out->node = std::move(conj);
    return out;
  }

  // chain := operand { ('->' | '-lim->' | '||' | '<->') operand }
  AstExprPtr chain() {
    AstExprPtr first = operand();
    if (!at(TokenKind::kArrow) && !at(TokenKind::kLimArrow) &&
        !at(TokenKind::kConcur) && !at(TokenKind::kPartner)) {
      return first;
    }
    AstChain out;
    out.operands.push_back(std::move(first));
    while (at(TokenKind::kArrow) || at(TokenKind::kLimArrow) ||
           at(TokenKind::kConcur) || at(TokenKind::kPartner)) {
      const TokenKind kind = advance().kind;
      switch (kind) {
        case TokenKind::kArrow: out.ops.push_back(AstOp::kBefore); break;
        case TokenKind::kLimArrow:
          out.ops.push_back(AstOp::kBeforeLimited);
          break;
        case TokenKind::kConcur: out.ops.push_back(AstOp::kConcurrent); break;
        default: out.ops.push_back(AstOp::kPartner); break;
      }
      out.operands.push_back(operand());
    }
    auto expr = std::make_unique<AstExpr>();
    expr->node = std::move(out);
    return expr;
  }

  // operand := IDENT | VARIABLE | '(' conjunction ')'
  AstExprPtr operand() {
    if (at(TokenKind::kLParen)) {
      advance();
      AstExprPtr inner = conjunction();
      expect(TokenKind::kRParen);
      return inner;
    }
    if (at(TokenKind::kIdent) || at(TokenKind::kVariable)) {
      AstOperand op;
      op.is_variable = at(TokenKind::kVariable);
      op.line = peek().line;
      op.name = advance().text;
      auto expr = std::make_unique<AstExpr>();
      expr->node = std::move(op);
      return expr;
    }
    fail("expected a class name, an event variable, or '('");
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokenKind kind) {
    if (!at(kind)) {
      fail(std::string("expected ") + token_kind_name(kind) + " but found " +
           token_kind_name(peek().kind));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

AstProgram parse(std::string_view source) {
  return Parser(lex(source)).program();
}

}  // namespace ocep::pattern
