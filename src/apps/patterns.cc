#include "apps/patterns.h"

#include "common/assert.h"

namespace ocep::apps {

std::string deadlock_pattern(std::uint32_t length) {
  OCEP_ASSERT(length >= 2);
  // Each class occurrence in a pattern is a fresh leaf (§III-C), so the
  // blocked-send occurrences are named with event variables to appear in
  // several pairwise-concurrency terms as the same event.
  std::string out;
  for (std::uint32_t i = 0; i < length; ++i) {
    const std::uint32_t next = (i + 1) % length;
    out += "W" + std::to_string(i) + " := [$p" + std::to_string(i) +
           ", blocked_send, $p" + std::to_string(next) + "];\n";
  }
  for (std::uint32_t i = 0; i < length; ++i) {
    out += "W" + std::to_string(i) + " $w" + std::to_string(i) + ";\n";
  }
  out += "pattern := ";
  bool first = true;
  for (std::uint32_t i = 0; i < length; ++i) {
    for (std::uint32_t j = i + 1; j < length; ++j) {
      if (!first) {
        out += " && ";
      }
      first = false;
      out += "($w" + std::to_string(i) + " || $w" + std::to_string(j) + ")";
    }
  }
  out += ";\n";
  return out;
}

std::string race_pattern(const std::string& receiver) {
  return "S1 := [$a, send_msg, ''];\n"
         "S2 := [$b, send_msg, ''];\n"
         "R1 := [" + receiver + ", recv_msg, ''];\n"
         "R2 := [" + receiver + ", recv_msg, ''];\n"
         "S1 $s1;\n"
         "S2 $s2;\n"
         "pattern := ($s1 || $s2) && ($s1 <-> R1) && ($s2 <-> R2);\n";
}

std::string atomicity_pattern() {
  return "E1 := [$a, cs_enter, ''];\n"
         "E2 := [$b, cs_enter, ''];\n"
         "pattern := E1 || E2;\n";
}

std::string traffic_pattern() {
  return "G1 := [$a, green_on, ''];\n"
         "G2 := [$b, green_on, ''];\n"
         "pattern := G1 || G2;\n";
}

std::string ordering_pattern() {
  return "Synch    := [$f, Synch_Leader, $tag];\n"
         "Snapshot := [$l, Take_Snapshot, $tag];\n"
         "Update   := [$l, Make_Update, ''];\n"
         "Forward  := [$l, Forward_Snapshot, $tag];\n"
         "Snapshot $Diff;\n"
         "Update $Write;\n"
         "pattern := (Synch -> $Diff) && ($Diff -> $Write) && "
         "($Write -> Forward);\n";
}

}  // namespace ocep::apps
