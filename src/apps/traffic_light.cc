#include <memory>
#include <string>

#include "apps/apps.h"
#include "common/assert.h"

namespace ocep::apps {
namespace {

struct TrafficShared {
  TrafficParams params;
  TraceId controller = 0;
  std::vector<TraceId> lights;
  std::shared_ptr<std::vector<TrafficInjection>> injections;
};

/// A light: waits for a grant, turns green, holds the intersection for a
/// while, turns red, releases.
sim::ProcessBody light_body(sim::Proc& ctx,
                            std::shared_ptr<const TrafficShared> shared) {
  Rng& rng = ctx.sim().rng();
  const Symbol recv_grant = ctx.sym("recv_grant");
  const Symbol green_on = ctx.sym("green_on");
  const Symbol green_off = ctx.sym("green_off");
  const Symbol release = ctx.sym("release");
  while (true) {
    const sim::Incoming grant =
        co_await ctx.recv(shared->controller, recv_grant);
    if (grant.payload == 0) {
      co_return;  // shutdown
    }
    co_await ctx.local(green_on);
    co_await ctx.delay(2 + rng.below(6));
    co_await ctx.local(green_off);
    co_await ctx.send(shared->controller, release);
  }
}

/// The controller: grants one direction at a time and normally waits for
/// the release before the next grant.  The injected bug grants the next
/// direction while the previous one is still green.
sim::ProcessBody controller_body(sim::Proc& ctx,
                                 std::shared_ptr<const TrafficShared> shared) {
  const TrafficParams& params = shared->params;
  Rng& rng = ctx.sim().rng();
  const Symbol grant = ctx.sym("grant");
  const Symbol recv_release = ctx.sym("recv_release");

  std::uint64_t outstanding = 0;  // releases not yet collected
  for (std::uint64_t cycle = 0; cycle < params.cycles; ++cycle) {
    const std::size_t pick = rng.below(shared->lights.size());
    const TraceId light = shared->lights[pick];
    co_await ctx.send(light, grant, kEmptySymbol, /*payload=*/1);
    ++outstanding;

    const bool buggy = rng.chance(params.bug_percent, 100);
    if (buggy && cycle + 1 < params.cycles) {
      // Grant a *different* direction before collecting the release: both
      // greens are causally concurrent.
      std::size_t other = pick;
      while (other == pick) {
        other = rng.below(shared->lights.size());
      }
      shared->injections->push_back(
          TrafficInjection{light, shared->lights[other]});
      ++cycle;
      co_await ctx.send(shared->lights[other], grant, kEmptySymbol, 1);
      ++outstanding;
      co_await ctx.recv(sim::kAnySource, recv_release);
      --outstanding;
    }
    co_await ctx.recv(sim::kAnySource, recv_release);
    --outstanding;
  }
  OCEP_ASSERT(outstanding == 0);
  // Shut every light down.
  for (const TraceId light : shared->lights) {
    co_await ctx.send(light, grant, kEmptySymbol, /*payload=*/0);
  }
}

}  // namespace

TrafficApp setup_traffic_lights(sim::Sim& sim, const TrafficParams& params) {
  OCEP_ASSERT_MSG(params.lights >= 2, "need at least two directions");

  auto shared = std::make_shared<TrafficShared>();
  shared->params = params;
  shared->injections = std::make_shared<std::vector<TrafficInjection>>();

  TrafficApp app;
  shared->controller = sim.add_process("CTRL", [shared](sim::Proc& ctx) {
    return controller_body(ctx, shared);
  });
  app.controller = shared->controller;
  app.injections = shared->injections;
  for (std::uint32_t i = 0; i < params.lights; ++i) {
    const TraceId t = sim.add_process(
        "L" + std::to_string(i),
        [shared](sim::Proc& ctx) { return light_body(ctx, shared); });
    shared->lights.push_back(t);
    app.lights.push_back(t);
  }
  return app;
}

}  // namespace ocep::apps
