#include <algorithm>
#include <memory>

#include "apps/apps.h"
#include "common/assert.h"

namespace ocep::apps {
namespace {

struct WalkShared {
  RandomWalkParams params;
  std::uint64_t member_steps = 0;  ///< normal steps run by cycle members
  std::vector<TraceId> procs;
  std::vector<TraceId> cycle;
};

/// One process of the parallel random walk.  Even ranks receive before
/// sending and keep each step's outgoing batch within the channel capacity,
/// so their sends never block; odd ranks send before receiving and may
/// burst past the capacity — the incorrect usage of the blocking
/// communication routine that makes a send block whenever the network
/// cannot buffer the burst (§V-C.1).  Because ranks alternate around the
/// ring (processes is even) and the even partner's receive order matches
/// the odd partner's send order, every transient block resolves and the
/// only waits-for cycle possible is the injected one.
sim::ProcessBody walker_body(sim::Proc& ctx,
                             std::shared_ptr<const WalkShared> shared,
                             std::uint32_t rank) {
  const RandomWalkParams& params = shared->params;
  const std::uint32_t n = params.processes;
  const TraceId right = shared->procs[(rank + 1) % n];
  const TraceId left = shared->procs[(rank + n - 1) % n];
  Rng& rng = ctx.sim().rng();

  const Symbol hdr = ctx.sym("walker_hdr");
  const Symbol walker = ctx.sym("walker");
  const Symbol recv_hdr = ctx.sym("recv_walker_hdr");
  const Symbol recv_walker = ctx.sym("recv_walker");

  const bool in_cycle =
      params.inject_deadlock && rank < shared->cycle.size();
  const std::uint64_t steps = in_cycle ? shared->member_steps : params.steps;

  // Even ranks: header + walkers <= capacity, never blocks.  Odd ranks may
  // exceed it by a couple of messages — a transient block.
  const std::uint64_t capacity = ctx.sim().config().channel_capacity;
  const std::uint64_t max_cross =
      rank % 2 == 0 ? capacity - 1 : capacity + 2;

  std::uint64_t walkers = params.walkers;
  for (std::uint64_t step = 0; step < steps; ++step) {
    co_await ctx.delay(1 + rng.below(4));
    // Walkers that cross the sub-domain boundary this step.
    std::uint64_t go_right =
        rng.below(std::min<std::uint64_t>(walkers, max_cross) + 1);
    walkers -= go_right;
    std::uint64_t go_left =
        rng.below(std::min<std::uint64_t>(walkers, max_cross) + 1);
    walkers -= go_left;

    if (rank % 2 == 1) {
      // Unsafe order: exchange all outgoing walkers first.
      co_await ctx.send(right, hdr, kEmptySymbol, go_right);
      for (std::uint64_t i = 0; i < go_right; ++i) {
        co_await ctx.send(right, walker, kEmptySymbol, 1);
      }
      co_await ctx.send(left, hdr, kEmptySymbol, go_left);
      for (std::uint64_t i = 0; i < go_left; ++i) {
        co_await ctx.send(left, walker, kEmptySymbol, 1);
      }
      const sim::Incoming from_left = co_await ctx.recv(left, recv_hdr);
      for (std::uint64_t i = 0; i < from_left.payload; ++i) {
        co_await ctx.recv(left, recv_walker);
        ++walkers;
      }
      const sim::Incoming from_right = co_await ctx.recv(right, recv_hdr);
      for (std::uint64_t i = 0; i < from_right.payload; ++i) {
        co_await ctx.recv(right, recv_walker);
        ++walkers;
      }
    } else {
      const sim::Incoming from_left = co_await ctx.recv(left, recv_hdr);
      for (std::uint64_t i = 0; i < from_left.payload; ++i) {
        co_await ctx.recv(left, recv_walker);
        ++walkers;
      }
      const sim::Incoming from_right = co_await ctx.recv(right, recv_hdr);
      for (std::uint64_t i = 0; i < from_right.payload; ++i) {
        co_await ctx.recv(right, recv_walker);
        ++walkers;
      }
      co_await ctx.send(right, hdr, kEmptySymbol, go_right);
      for (std::uint64_t i = 0; i < go_right; ++i) {
        co_await ctx.send(right, walker, kEmptySymbol, 1);
      }
      co_await ctx.send(left, hdr, kEmptySymbol, go_left);
      for (std::uint64_t i = 0; i < go_left; ++i) {
        co_await ctx.send(left, walker, kEmptySymbol, 1);
      }
    }
  }

  if (!in_cycle) {
    co_return;
  }

  // --- Injected deadlock ----------------------------------------------
  // Ring barrier among the cycle members so every member-to-member channel
  // is drained, then every member bursts more messages than the channel
  // can buffer at the next member without ever receiving: a send-receive
  // cycle in which each blocking send waits forever.
  const std::size_t cycle_len = shared->cycle.size();
  const TraceId cycle_next = shared->cycle[(rank + 1) % cycle_len];
  const TraceId cycle_prev = shared->cycle[(rank + cycle_len - 1) % cycle_len];
  const Symbol barrier = ctx.sym("barrier");
  const Symbol recv_barrier = ctx.sym("recv_barrier");
  const Symbol go = ctx.sym("go");
  const Symbol recv_go = ctx.sym("recv_go");

  if (rank == 0) {
    co_await ctx.send(cycle_next, barrier);
    co_await ctx.recv(cycle_prev, recv_barrier);
    co_await ctx.send(cycle_next, go);
    co_await ctx.recv(cycle_prev, recv_go);
  } else {
    co_await ctx.recv(cycle_prev, recv_barrier);
    co_await ctx.send(cycle_next, barrier);
    co_await ctx.recv(cycle_prev, recv_go);
    co_await ctx.send(cycle_next, go);
  }

  const Symbol rebalance = ctx.sym("rebalance");
  for (std::uint64_t i = 0; i <= capacity; ++i) {
    // The (capacity + 1)-th send blocks forever: the next member is itself
    // bursting and never receives again.
    co_await ctx.send(cycle_next, rebalance, kEmptySymbol, walkers);
  }
  OCEP_ASSERT_MSG(false, "burst send past capacity must block forever");
}

}  // namespace

RandomWalkApp setup_random_walk(sim::Sim& sim,
                                const RandomWalkParams& params) {
  OCEP_ASSERT_MSG(params.processes >= 4 && params.processes % 2 == 0,
                  "ring needs an even number of processes >= 4");
  OCEP_ASSERT_MSG(!params.inject_deadlock ||
                      (params.cycle_length >= 2 &&
                       params.cycle_length < params.processes),
                  "cycle length must be in [2, processes)");

  auto shared = std::make_shared<WalkShared>();
  shared->params = params;
  shared->member_steps =
      params.deadlock_after != 0 ? params.deadlock_after : params.steps / 2;
  OCEP_ASSERT(shared->member_steps < params.steps);

  RandomWalkApp app;
  for (std::uint32_t rank = 0; rank < params.processes; ++rank) {
    const TraceId t = sim.add_process(
        "P" + std::to_string(rank),
        [shared, rank](sim::Proc& ctx) {
          return walker_body(ctx, shared, rank);
        });
    shared->procs.push_back(t);
    app.processes.push_back(t);
  }
  if (params.inject_deadlock) {
    for (std::uint32_t i = 0; i < params.cycle_length; ++i) {
      shared->cycle.push_back(shared->procs[i]);
    }
    app.cycle = shared->cycle;
  }
  return app;
}

}  // namespace ocep::apps
