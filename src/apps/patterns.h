// The paper's case-study patterns (§III-D, §V-C), as pattern-language text
// matched against the workloads in apps.h.
#pragma once

#include <cstdint>
#include <string>

namespace ocep::apps {

/// Deadlock of a specific length (§V-C.1): a cycle of `length` blocked
/// sends, pairwise concurrent, where each blocked send's text names the
/// next member's trace and the process/text variables close the cycle:
///   W0 := [$p0, blocked_send, $p1];  W1 := [$p1, blocked_send, $p2]; ...
///   pattern := W0 || W1 && W0 || W2 && ...   (all pairs)
[[nodiscard]] std::string deadlock_pattern(std::uint32_t length);

/// Message race (§V-C.2): two concurrent sends whose partner receives land
/// on the wild-card receiver:
///   pattern := (S1 || S2) && (S1 <-> R1) && (S2 <-> R2)
/// `receiver` is the receiving trace's name (attribute-matched exactly).
[[nodiscard]] std::string race_pattern(const std::string& receiver = "R0");

/// Atomicity violation (§V-C.3): two concurrent critical-section entries —
/// possible only when an acquire was skipped, because legitimate sections
/// are causally chained through the semaphore trace:
///   pattern := E1 || E2
[[nodiscard]] std::string atomicity_pattern();

/// Traffic-light safety (§I's motivating example): lights in only one
/// direction may be green, i.e. no two green_on events are concurrent:
///   pattern := G1 || G2
[[nodiscard]] std::string traffic_pattern();

/// Ordering bug (§III-D): snapshot taken on a synch request is followed by
/// an update before it gets forwarded to the follower.  The request tag
/// variable $tag pairs Synch/Snapshot/Forward per request; $Diff and $Write
/// are the paper's event variables.
[[nodiscard]] std::string ordering_pattern();

}  // namespace ocep::apps
