#include <memory>
#include <string>

#include "apps/apps.h"
#include "common/assert.h"

namespace ocep::apps {
namespace {

struct OrderingShared {
  OrderingParams params;
  TraceId leader = 0;
  std::vector<TraceId> followers;
  std::shared_ptr<std::vector<OrderingInjection>> injections;
};

/// The replicated-service leader (§III-D).  For each synchronization
/// request it takes a snapshot and forwards it to the requesting follower.
/// Snapshot and Forward carry the request tag ("f<i>#<seq>") in their text
/// attribute so the monitoring pattern can pair them per request.  With
/// bug_percent% probability the leader makes an update *between* snapshot
/// and forward — ZooKeeper bug #962: the follower gets stale data.
sim::ProcessBody leader_body(sim::Proc& ctx,
                             std::shared_ptr<const OrderingShared> shared) {
  const OrderingParams& params = shared->params;
  Rng& rng = ctx.sim().rng();
  const Symbol recv_synch = ctx.sym("recv_synch");
  const Symbol take_snapshot = ctx.sym("Take_Snapshot");
  const Symbol make_update = ctx.sym("Make_Update");
  const Symbol forward_snapshot = ctx.sym("Forward_Snapshot");

  const std::uint64_t total =
      params.requests_each * shared->followers.size();
  for (std::uint64_t served = 0; served < total; ++served) {
    // Benign housekeeping update between requests; it never falls between
    // a snapshot and its forward, so the pattern must not match it.
    if (rng.chance(30, 100)) {
      co_await ctx.local(make_update);
    }
    const sim::Incoming request = co_await ctx.recv(sim::kAnySource,
                                                    recv_synch);
    const Symbol tag = request.text;
    const EventId snapshot =
        co_await ctx.local(take_snapshot, tag);
    co_await ctx.delay(1 + rng.below(3));
    const bool buggy = rng.chance(params.bug_percent, 100);
    EventId update{};
    if (buggy) {
      // The bug: the leader is not blocked from updating after the
      // snapshot was taken and before it is forwarded.
      update = co_await ctx.local(make_update);
    }
    const sim::SendResult forward =
        co_await ctx.send(request.from, forward_snapshot, tag);
    if (buggy) {
      shared->injections->push_back(OrderingInjection{
          request.from, snapshot, update, forward.send_event});
    }
  }
}

/// A follower: requests a synchronization snapshot `requests_each` times.
/// The request's text attribute is the unique tag the leader echoes on the
/// snapshot and the forward.
sim::ProcessBody follower_body(sim::Proc& ctx,
                               std::shared_ptr<const OrderingShared> shared,
                               std::uint32_t index) {
  const OrderingParams& params = shared->params;
  Rng& rng = ctx.sim().rng();
  const Symbol synch_leader = ctx.sym("Synch_Leader");
  const Symbol recv_snapshot = ctx.sym("recv_snapshot");

  for (std::uint64_t seq = 1; seq <= params.requests_each; ++seq) {
    co_await ctx.delay(1 + rng.below(16));
    const Symbol tag = ctx.sym("f" + std::to_string(index) + "#" +
                               std::to_string(seq));
    co_await ctx.send(shared->leader, synch_leader, tag);
    co_await ctx.recv(shared->leader, recv_snapshot);
  }
}

}  // namespace

OrderingApp setup_leader_follower(sim::Sim& sim,
                                  const OrderingParams& params) {
  OCEP_ASSERT_MSG(params.followers >= 1, "need at least one follower");

  auto shared = std::make_shared<OrderingShared>();
  shared->params = params;
  shared->injections = std::make_shared<std::vector<OrderingInjection>>();

  OrderingApp app;
  shared->leader = sim.add_process("LEADER", [shared](sim::Proc& ctx) {
    return leader_body(ctx, shared);
  });
  app.leader = shared->leader;
  app.injections = shared->injections;
  for (std::uint32_t i = 0; i < params.followers; ++i) {
    const TraceId t = sim.add_process(
        "F" + std::to_string(i),
        [shared, i](sim::Proc& ctx) { return follower_body(ctx, shared, i); });
    shared->followers.push_back(t);
    app.followers.push_back(t);
  }
  return app;
}

}  // namespace ocep::apps
