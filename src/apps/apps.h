// The paper's four case-study workloads (§V-C), as simulated applications.
//
// Each setup_* function registers processes (and semaphore traces) with a
// Sim and returns a handle holding the trace ids plus a ground-truth
// injection log the application fills in while it runs.  The completeness
// experiments (§V-D) check OCEP's reported matches against these logs: the
// monitor must cover every injected violation and report nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim.h"

namespace ocep::apps {

// --- 1. Deadlock: parallel random walk (§V-C.1) ----------------------------
//
// Processes in a ring exchange walkers that cross sub-domain boundaries.
// The point-to-point communication deliberately sends all outgoing walkers
// before receiving, so when bursts exceed the channel buffer a send blocks;
// a designated group of `cycle_length` processes eventually bursts along a
// cycle simultaneously and deadlocks, exactly the "rarely visible"
// MPI_Send deadlock the paper injects.

struct RandomWalkParams {
  std::uint32_t processes = 10;      ///< ring size (traces)
  std::uint32_t cycle_length = 4;    ///< length of the injected deadlock cycle
  std::uint64_t steps = 200;         ///< walk steps per process
  std::uint32_t walkers = 8;         ///< walkers per process at start
  std::uint64_t deadlock_after = 0;  ///< step at which the cycle group bursts
                                     ///< (0 = steps / 2)
  bool inject_deadlock = true;
};

struct RandomWalkApp {
  std::vector<TraceId> processes;
  /// The trace ids of the injected deadlock cycle, in cycle order
  /// (cycle[i] blocks sending to cycle[(i+1) % L]).  Empty if not injected.
  std::vector<TraceId> cycle;
};

RandomWalkApp setup_random_walk(sim::Sim& sim, const RandomWalkParams& params);

// --- 2. Message race: many-to-one with MPI_ANY_SOURCE (§V-C.2) -------------
//
// All processes but one send to the remaining process, which accepts them
// with a wild-card receive.  Sends from different senders are racy unless a
// token pass ordered them; the token makes some pairs causally ordered so
// the matcher's concurrency pruning is actually exercised.

struct RaceParams {
  std::uint32_t traces = 10;          ///< 1 receiver + (traces - 1) senders
  std::uint64_t messages_each = 100;  ///< messages per sender
  /// Probability (percent) that a sender passes a token to its neighbour
  /// after a send, causally ordering the neighbour's later sends behind it.
  std::uint32_t token_percent = 20;
};

struct RaceApp {
  TraceId receiver = 0;
  std::vector<TraceId> senders;
};

RaceApp setup_race_bench(sim::Sim& sim, const RaceParams& params);

// --- 3. Atomicity violation: semaphore-protected method (§V-C.3) -----------
//
// Workers enter a critical section guarded by a semaphore registered as its
// own trace (the µC++ plugin behaviour).  With `skip_percent`% probability
// a worker fails to acquire properly, so its section runs concurrently with
// the legitimate holder's.

struct AtomicityParams {
  std::uint32_t workers = 9;  ///< worker traces; total traces = workers + 1
  std::uint64_t iterations = 100;
  std::uint32_t skip_percent = 1;  ///< chance the acquire is skipped
};

/// One injected violation: the unprotected critical-section entry.
struct AtomicityInjection {
  TraceId worker = 0;
  EventId enter_event;
  EventId exit_event;
};

struct AtomicityApp {
  std::vector<TraceId> workers;
  sim::SemId semaphore{};
  TraceId semaphore_trace = 0;
  std::shared_ptr<std::vector<AtomicityInjection>> injections;
};

AtomicityApp setup_atomicity(sim::Sim& sim, const AtomicityParams& params);

// --- 4. Ordering bug: leader/follower replication (§III-D, §V-C.4) ---------
//
// Followers send synch requests; the leader takes a snapshot and forwards
// it.  With `bug_percent`% probability the leader makes an update between
// taking the snapshot and forwarding it (ZooKeeper bug #962): the follower
// receives stale service data.  Snapshot/Forward events carry a
// "follower#seq" tag in their text attribute so the pattern's variable
// binding pairs them per request.

struct OrderingParams {
  std::uint32_t followers = 49;  ///< total traces = followers + 1
  std::uint64_t requests_each = 20;
  std::uint32_t bug_percent = 1;
};

/// One injected violation: update made between snapshot and forward.
struct OrderingInjection {
  TraceId follower = 0;
  EventId snapshot_event;
  EventId update_event;
  EventId forward_event;
};

struct OrderingApp {
  TraceId leader = 0;
  std::vector<TraceId> followers;
  std::shared_ptr<std::vector<OrderingInjection>> injections;
};

OrderingApp setup_leader_follower(sim::Sim& sim, const OrderingParams& params);

// --- 5. Traffic lights: the paper's §I motivating example ------------------
//
// A correctness condition of a traffic-light system is that lights in only
// one direction may be green at a time.  Rather than checking the global
// state, the monitor matches the event pattern "two green_on events are
// concurrent".  A controller grants green to one direction and normally
// waits for the release before granting the next; with `bug_percent`%
// probability it grants the next direction early — the two green phases
// are then causally concurrent.

struct TrafficParams {
  std::uint32_t lights = 4;  ///< directions; total traces = lights + 1
  std::uint64_t cycles = 100;  ///< grants issued by the controller
  std::uint32_t bug_percent = 1;
};

/// One injected violation: the prematurely granted green phase.
struct TrafficInjection {
  TraceId first_light = 0;   ///< holder of the still-active green
  TraceId second_light = 0;  ///< prematurely granted direction
};

struct TrafficApp {
  TraceId controller = 0;
  std::vector<TraceId> lights;
  std::shared_ptr<std::vector<TrafficInjection>> injections;
};

TrafficApp setup_traffic_lights(sim::Sim& sim, const TrafficParams& params);

}  // namespace ocep::apps
