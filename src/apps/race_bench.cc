#include <memory>
#include <string>

#include "apps/apps.h"
#include "common/assert.h"

namespace ocep::apps {
namespace {

struct RaceShared {
  RaceParams params;
  TraceId receiver = 0;
  std::vector<TraceId> senders;
  std::uint64_t token_every = 0;  ///< derived from token_percent; 0 = never
};

/// The receiving process: a blocking receive with the MPI_ANY_SOURCE
/// wild-card, exactly the benchmark of §V-C.2.  Two concurrent incoming
/// messages race on this wild-card.
sim::ProcessBody receiver_body(sim::Proc& ctx,
                               std::shared_ptr<const RaceShared> shared) {
  const Symbol recv_msg = ctx.sym("recv_msg");
  const std::uint64_t total =
      shared->params.messages_each * shared->senders.size();
  for (std::uint64_t i = 0; i < total; ++i) {
    co_await ctx.recv(sim::kAnySource, recv_msg);
  }
}

/// A sender.  Every `token_every`-th round, sender k first waits for a
/// token from sender k-1 and afterwards passes one to sender k+1, which
/// causally orders that round's sends across the chain — so the
/// computation contains both racing and non-racing pairs and the matcher's
/// concurrency pruning is exercised.
sim::ProcessBody sender_body(sim::Proc& ctx,
                             std::shared_ptr<const RaceShared> shared,
                             std::uint32_t index) {
  const RaceParams& params = shared->params;
  Rng& rng = ctx.sim().rng();
  const Symbol msg = ctx.sym("send_msg");
  const Symbol token = ctx.sym("token");
  const Symbol recv_token = ctx.sym("recv_token");
  const bool has_prev = index > 0;
  const bool has_next = index + 1 < shared->senders.size();

  for (std::uint64_t round = 1; round <= params.messages_each; ++round) {
    const bool chained =
        shared->token_every != 0 && round % shared->token_every == 0;
    if (chained && has_prev) {
      co_await ctx.recv(shared->senders[index - 1], recv_token);
    }
    co_await ctx.delay(1 + rng.below(6));
    co_await ctx.send(shared->receiver, msg, kEmptySymbol, round);
    if (chained && has_next) {
      co_await ctx.send(shared->senders[index + 1], token);
    }
  }
}

}  // namespace

RaceApp setup_race_bench(sim::Sim& sim, const RaceParams& params) {
  OCEP_ASSERT_MSG(params.traces >= 3, "need a receiver and >= 2 senders");

  auto shared = std::make_shared<RaceShared>();
  shared->params = params;
  // Map the percentage to a deterministic chain period: e.g. 20% => every
  // 5th round is causally chained across the senders.
  shared->token_every =
      params.token_percent == 0 ? 0 : std::max(1U, 100U / params.token_percent);

  RaceApp app;
  shared->receiver = sim.add_process("R0", [shared](sim::Proc& ctx) {
    return receiver_body(ctx, shared);
  });
  app.receiver = shared->receiver;
  for (std::uint32_t i = 0; i + 1 < params.traces; ++i) {
    const TraceId t = sim.add_process(
        "S" + std::to_string(i),
        [shared, i](sim::Proc& ctx) { return sender_body(ctx, shared, i); });
    shared->senders.push_back(t);
    app.senders.push_back(t);
  }
  return app;
}

}  // namespace ocep::apps
