#include <memory>
#include <string>

#include "apps/apps.h"
#include "common/assert.h"

namespace ocep::apps {
namespace {

struct AtomicityShared {
  AtomicityParams params;
  sim::SemId semaphore{};
  std::vector<TraceId> workers;
  std::shared_ptr<std::vector<AtomicityInjection>> injections;
  std::uint64_t ping_every = 7;  ///< deterministic worker-to-worker chatter
};

/// A worker that repeatedly executes a semaphore-protected method
/// (§V-C.3).  With skip_percent% probability the acquire is skipped — the
/// intentional bug — so the section runs concurrently with the legitimate
/// holder's.  Periodic pings between neighbouring workers add causal edges
/// unrelated to the semaphore, so not every pair of section entries is
/// concurrent.
sim::ProcessBody worker_body(sim::Proc& ctx,
                             std::shared_ptr<const AtomicityShared> shared,
                             std::uint32_t index) {
  const AtomicityParams& params = shared->params;
  Rng& rng = ctx.sim().rng();
  const Symbol enter = ctx.sym("cs_enter");
  const Symbol exit = ctx.sym("cs_exit");
  const Symbol ping = ctx.sym("ping");
  const Symbol recv_ping = ctx.sym("recv_ping");
  const bool has_prev = index > 0;
  const bool has_next = index + 1 < shared->workers.size();

  for (std::uint64_t it = 1; it <= params.iterations; ++it) {
    co_await ctx.delay(1 + rng.below(8));
    const bool chatty = shared->ping_every != 0 && it % shared->ping_every == 0;
    if (chatty && has_prev) {
      co_await ctx.recv(shared->workers[index - 1], recv_ping);
    }

    const bool skip = rng.chance(params.skip_percent, 100);
    if (!skip) {
      co_await ctx.acquire(shared->semaphore);
    }
    const EventId enter_event = co_await ctx.local(enter);
    co_await ctx.delay(1 + rng.below(3));
    const EventId exit_event = co_await ctx.local(exit);
    if (!skip) {
      co_await ctx.release(shared->semaphore);
    } else {
      shared->injections->push_back(
          AtomicityInjection{ctx.id(), enter_event, exit_event});
    }

    if (chatty && has_next) {
      co_await ctx.send(shared->workers[index + 1], ping);
    }
  }
}

}  // namespace

AtomicityApp setup_atomicity(sim::Sim& sim, const AtomicityParams& params) {
  OCEP_ASSERT_MSG(params.workers >= 2, "need at least two workers");

  auto shared = std::make_shared<AtomicityShared>();
  shared->params = params;
  shared->injections = std::make_shared<std::vector<AtomicityInjection>>();
  shared->semaphore = sim.add_semaphore("SEM", 1);

  AtomicityApp app;
  app.semaphore = shared->semaphore;
  app.semaphore_trace = sim.semaphore_trace(shared->semaphore);
  app.injections = shared->injections;
  for (std::uint32_t i = 0; i < params.workers; ++i) {
    const TraceId t = sim.add_process(
        "W" + std::to_string(i),
        [shared, i](sim::Proc& ctx) { return worker_body(ctx, shared, i); });
    shared->workers.push_back(t);
    app.workers.push_back(t);
  }
  return app;
}

}  // namespace ocep::apps
