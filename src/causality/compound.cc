#include "causality/compound.h"

#include <algorithm>

#include "common/assert.h"

namespace ocep {
namespace {

bool pairwise_all(CompoundEvent a, CompoundEvent b, Relation want) {
  for (const TimedEvent& x : a) {
    for (const TimedEvent& y : b) {
      if (relate(x.id, *x.clock, y.id, *y.clock) != want) {
        return false;
      }
    }
  }
  return true;
}

bool pairwise_any(CompoundEvent a, CompoundEvent b, Relation want) {
  for (const TimedEvent& x : a) {
    for (const TimedEvent& y : b) {
      if (relate(x.id, *x.clock, y.id, *y.clock) == want) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool strong_precedes(CompoundEvent a, CompoundEvent b) {
  OCEP_ASSERT(!a.empty() && !b.empty());
  return pairwise_all(a, b, Relation::kBefore);
}

bool weak_precedes(CompoundEvent a, CompoundEvent b) {
  OCEP_ASSERT(!a.empty() && !b.empty());
  return pairwise_any(a, b, Relation::kBefore);
}

bool overlaps(CompoundEvent a, CompoundEvent b) {
  return std::ranges::any_of(a, [&](const TimedEvent& x) {
    return std::ranges::any_of(
        b, [&](const TimedEvent& y) { return x.id == y.id; });
  });
}

bool disjoint(CompoundEvent a, CompoundEvent b) { return !overlaps(a, b); }

bool crosses(CompoundEvent a, CompoundEvent b) {
  return disjoint(a, b) && weak_precedes(a, b) && weak_precedes(b, a);
}

bool entangled(CompoundEvent a, CompoundEvent b) {
  return crosses(a, b) || overlaps(a, b);
}

bool precedes(CompoundEvent a, CompoundEvent b) {
  return weak_precedes(a, b) && !entangled(a, b);
}

bool concurrent(CompoundEvent a, CompoundEvent b) {
  OCEP_ASSERT(!a.empty() && !b.empty());
  return pairwise_all(a, b, Relation::kConcurrent);
}

CompoundRelation classify(CompoundEvent a, CompoundEvent b) {
  if (entangled(a, b)) {
    return CompoundRelation::kEntangled;
  }
  if (weak_precedes(a, b)) {
    return CompoundRelation::kBefore;
  }
  if (weak_precedes(b, a)) {
    return CompoundRelation::kAfter;
  }
  return CompoundRelation::kConcurrent;
}

}  // namespace ocep
