// Relations between compound events (paper §III-B).
//
// A compound event is a non-empty set of causally related primitive events.
// Lamport's strong precedence leaves many pairs unclassified; Basten's weak
// precedence breaks partial-order properties.  Nichols' framework adds
// entanglement (A <-> B) so that any two compound events stand in exactly
// one of four relationships: A -> B, B -> A, A || B, or A <-> B
// (paper eqs. (1)-(3)).
#pragma once

#include <span>

#include "causality/vector_clock.h"
#include "model/ids.h"

namespace ocep {

/// A primitive event together with its timestamp, as the compound-event
/// predicates need both.  The clock must outlive the view.
struct TimedEvent {
  EventId id;
  const VectorClock* clock = nullptr;
};

using CompoundEvent = std::span<const TimedEvent>;

/// Lamport strong precedence:  A => B  iff  forall a, b: a -> b.
[[nodiscard]] bool strong_precedes(CompoundEvent a, CompoundEvent b);

/// Basten weak precedence:  exists a in A, b in B with a -> b.
[[nodiscard]] bool weak_precedes(CompoundEvent a, CompoundEvent b);

/// A and B share at least one primitive event.
[[nodiscard]] bool overlaps(CompoundEvent a, CompoundEvent b);

/// A and B share no primitive event.
[[nodiscard]] bool disjoint(CompoundEvent a, CompoundEvent b);

/// Disjoint, but each weakly precedes the other
/// (exists a0 -> b0 and b1 -> a1).
[[nodiscard]] bool crosses(CompoundEvent a, CompoundEvent b);

/// Entanglement, eq. (1):  A crosses B or A overlaps B.
[[nodiscard]] bool entangled(CompoundEvent a, CompoundEvent b);

/// Nichols precedence, eq. (2):  weak precedence without entanglement.
[[nodiscard]] bool precedes(CompoundEvent a, CompoundEvent b);

/// Nichols concurrence, eq. (3):  every pair of primitive events concurrent.
[[nodiscard]] bool concurrent(CompoundEvent a, CompoundEvent b);

/// The exactly-one-of-four classification.
enum class CompoundRelation : std::uint8_t {
  kBefore,      ///< A -> B
  kAfter,       ///< B -> A
  kConcurrent,  ///< A || B
  kEntangled,   ///< A <-> B
};

[[nodiscard]] CompoundRelation classify(CompoundEvent a, CompoundEvent b);

}  // namespace ocep
