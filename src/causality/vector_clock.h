// Fidge/Mattern vector timestamps (paper §III, [14, 28]).
//
// Each trace t maintains a clock whose entry s counts the events of trace s
// it causally knows about; entry t counts its own events, so for an event a
// on trace i, V_a[i] == index(a).  Given the ids and timestamps of two
// events, happens-before is decided with at most two integer comparisons.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "model/ids.h"

namespace ocep {

class VectorClock {
 public:
  VectorClock() = default;

  /// Zero clock over `traces` entries.
  explicit VectorClock(std::size_t traces) : entries_(traces, 0) {}

  /// Clock with explicit entries (mostly for tests and deserialization).
  explicit VectorClock(std::vector<std::uint32_t> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] std::uint32_t operator[](TraceId t) const {
    OCEP_ASSERT(t < entries_.size());
    return entries_[t];
  }

  /// Advances trace t's own component; call once per local event.
  void tick(TraceId t) {
    OCEP_ASSERT(t < entries_.size());
    ++entries_[t];
  }

  /// Raises entry t to `value`.  Entries along a trace only ever grow, so
  /// lowering is rejected; used when applying delta-encoded timestamps.
  void raise(TraceId t, std::uint32_t value) {
    OCEP_ASSERT(t < entries_.size());
    OCEP_ASSERT_MSG(value >= entries_[t], "clock entries never regress");
    entries_[t] = value;
  }

  /// Component-wise maximum; the receive-side clock update.
  void merge(const VectorClock& other) {
    OCEP_ASSERT(entries_.size() == other.entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (other.entries_[i] > entries_[i]) {
        entries_[i] = other.entries_[i];
      }
    }
  }

  [[nodiscard]] std::span<const std::uint32_t> entries() const noexcept {
    return entries_;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::uint32_t> entries_;
};

/// Exact causal relationship between two (distinct or equal) events.
enum class Relation : std::uint8_t {
  kEqual,
  kBefore,      ///< a -> b
  kAfter,       ///< b -> a
  kConcurrent,  ///< a || b
};

/// a -> b given a's id and b's timestamp.  With Fidge/Mattern clocks,
/// a -> b  <=>  V_b[trace(a)] >= index(a)  and a != b.  This is the O(1)
/// comparison the paper relies on; note only the *successor's* clock is
/// needed.
[[nodiscard]] inline bool happens_before(EventId a, const VectorClock& vb,
                                         EventId b) {
  if (a == b) {
    return false;
  }
  return vb[a.trace] >= a.index;
}

/// Same test when only b's knowledge of a's trace is at hand.
[[nodiscard]] constexpr bool happens_before(EventId a,
                                            std::uint32_t vb_entry_for_a_trace,
                                            EventId b) noexcept {
  if (a == b) {
    return false;
  }
  return vb_entry_for_a_trace >= a.index;
}

/// Full classification with at most two integer comparisons plus the
/// process/event-number comparison for equality (paper §III-A).
[[nodiscard]] inline Relation relate(EventId a, const VectorClock& va,
                                     EventId b, const VectorClock& vb) {
  if (a == b) {
    return Relation::kEqual;
  }
  if (happens_before(a, vb, b)) {
    return Relation::kBefore;
  }
  if (happens_before(b, va, a)) {
    return Relation::kAfter;
  }
  return Relation::kConcurrent;
}

}  // namespace ocep
