// Coroutine plumbing for simulated processes.
//
// A simulated process is a C++20 coroutine: blocking primitives (send on a
// full channel, receive with nothing arrived, semaphore acquire) simply
// co_await, and the deterministic scheduler resumes the coroutine when the
// simulated operation completes.  This keeps application code in its
// natural shape — loops with blocking calls — exactly like the MPI and
// µC++ programs the paper instruments.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace ocep::sim {

/// Return type of a simulated process body.  The simulator owns the handle
/// and destroys it when the run ends.
class ProcessBody {
 public:
  struct promise_type {
    ProcessBody get_return_object() {
      return ProcessBody{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // The scheduler starts bodies explicitly at run() time.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the scheduler can observe done() before the
    // frame is destroyed.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  ProcessBody() = default;
  explicit ProcessBody(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  ProcessBody(ProcessBody&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  ProcessBody& operator=(ProcessBody&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ProcessBody(const ProcessBody&) = delete;
  ProcessBody& operator=(const ProcessBody&) = delete;
  ~ProcessBody() { destroy(); }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  [[nodiscard]] bool done() const {
    return !handle_ || handle_.done();
  }
  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ocep::sim
