#include "sim/sim.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"

namespace ocep::sim {
namespace {

constexpr std::uint64_t channel_key(TraceId from, TraceId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

Sim::Sim(StringPool& pool, SimConfig config)
    : pool_(&pool), config_(config), rng_(config.seed) {
  OCEP_ASSERT_MSG(config_.min_latency >= 1,
                  "latency must be >= 1 so a receive is after its send");
  OCEP_ASSERT(config_.max_latency >= config_.min_latency);
}

Sim::~Sim() = default;

TraceId Sim::add_process(std::string_view name, BodyFactory body) {
  OCEP_ASSERT_MSG(!started_, "cannot add traces after run()");
  const TraceId t = store_.add_trace(pool_->intern(name));
  procs_.resize(t + 1);
  arrived_any_.resize(t + 1);
  auto state = std::make_unique<ProcState>();
  state->trace = t;
  state->ctx = std::unique_ptr<Proc>(new Proc(*this, t));
  state->factory = std::move(body);
  procs_[t] = std::move(state);
  return t;
}

SemId Sim::add_semaphore(std::string_view name, std::uint32_t permits) {
  OCEP_ASSERT_MSG(!started_, "cannot add traces after run()");
  const TraceId t = store_.add_trace(pool_->intern(name));
  procs_.resize(t + 1);  // null entry: passive trace
  arrived_any_.resize(t + 1);
  sems_.push_back(Semaphore{t, permits, {}});
  return SemId{static_cast<std::uint32_t>(sems_.size() - 1)};
}

TraceId Sim::semaphore_trace(SemId sem) const {
  const auto i = static_cast<std::size_t>(sem);
  OCEP_ASSERT(i < sems_.size());
  return sems_[i].trace;
}

Symbol Proc::sym(std::string_view s) const { return sim_->pool().intern(s); }

RunResult Sim::run() {
  OCEP_ASSERT_MSG(!started_, "run() may be called once");
  started_ = true;
  running_ = true;

  const std::size_t n = store_.trace_count();
  clocks_.assign(n, VectorClock(n));

  if (live_sink_ != nullptr) {
    std::vector<Symbol> names;
    names.reserve(n);
    for (TraceId t = 0; t < n; ++t) {
      names.push_back(store_.trace_name(t));
    }
    live_sink_->on_traces(names);
  }

  // Start every process body at time 0 (op == kNone means "just resume").
  for (auto& p : procs_) {
    if (p != nullptr) {
      p->body = p->factory(*p->ctx);
      p->op = OpKind::kNone;
      schedule(0, ActionKind::kExecOp, p->trace, 0);
    }
  }

  RunResult result;
  bool hit_limit = false;
  while (!queue_.empty()) {
    if (config_.max_events != 0 && events_ >= config_.max_events) {
      hit_limit = true;
      break;
    }
    const Action action = queue_.top();
    queue_.pop();
    OCEP_ASSERT(action.time >= now_);
    now_ = action.time;
    switch (action.kind) {
      case ActionKind::kExecOp:
        exec_op(*procs_[action.trace], action.time);
        break;
      case ActionKind::kArrival:
        on_arrival(action.message, action.time);
        break;
    }
  }
  running_ = false;

  result.events = events_;
  result.end_time = now_;
  bool all_done = true;
  for (const auto& p : procs_) {
    if (p == nullptr) {
      continue;
    }
    if (!p->body.done()) {
      all_done = false;
      BlockedInfo info;
      info.trace = p->trace;
      if (p->blocked_send) {
        info.kind = BlockedInfo::Kind::kSend;
        info.peer = p->op_peer;
        info.blocked_event = p->send_result.blocked_event;
      } else if (p->waiting_recv) {
        info.kind = BlockedInfo::Kind::kRecv;
        info.peer = p->waiting_src;
      } else if (p->waiting_grant) {
        info.kind = BlockedInfo::Kind::kSemaphore;
        info.peer = semaphore_trace(p->op_sem);
      } else {
        // Abandoned mid-op by the event limit; report as a recv-style stall.
        info.kind = BlockedInfo::Kind::kRecv;
        info.peer = p->trace;
      }
      result.blocked.push_back(info);
    }
  }
  if (hit_limit) {
    result.reason = EndReason::kEventLimit;
  } else {
    result.reason = all_done ? EndReason::kCompleted : EndReason::kQuiescent;
  }
  return result;
}

void Sim::submit_current_op(ProcState& p) {
  if (p.op == OpKind::kDelay) {
    p.op = OpKind::kNone;
    p.local_event = EventId{};
    schedule(p.now + config_.op_cost + p.op_delay, ActionKind::kExecOp,
             p.trace, 0);
    return;
  }
  schedule(p.now + config_.op_cost, ActionKind::kExecOp, p.trace, 0);
}

void Sim::schedule(std::uint64_t time, ActionKind kind, TraceId trace,
                   std::uint64_t message) {
  queue_.push(Action{time, next_seq_++, kind, trace, message});
}

void Sim::schedule_arrival(TraceId from, TraceId to, std::uint64_t message,
                           std::uint64_t now) {
  Channel& ch = channel(from, to);
  const std::uint64_t at = std::max(now + latency(), ch.last_arrival);
  ch.last_arrival = at;
  schedule(at, ActionKind::kArrival, to, message);
}

void Sim::resume(ProcState& p, std::uint64_t at) {
  p.now = at;
  p.body.handle().resume();
  if (p.body.done()) {
    if (auto exception = p.body.exception()) {
      std::rethrow_exception(exception);
    }
  }
}

void Sim::exec_op(ProcState& p, std::uint64_t now) {
  switch (p.op) {
    case OpKind::kNone:
      resume(p, now);
      break;
    case OpKind::kSend:
      exec_send(p, now);
      break;
    case OpKind::kRecv:
      exec_recv(p, now);
      break;
    case OpKind::kLocal:
      p.local_event =
          emit(p.trace, EventKind::kLocal, p.op_type, p.op_text, kNoMessage,
               nullptr);
      resume(p, now);
      break;
    case OpKind::kAcquire:
      exec_acquire(p, now);
      break;
    case OpKind::kRelease:
      exec_release(p, now);
      break;
    case OpKind::kDelay:
      OCEP_ASSERT_MSG(false, "delay is rewritten to kNone at submit time");
      break;
  }
}

void Sim::exec_send(ProcState& p, std::uint64_t now) {
  const TraceId dst = p.op_peer;
  OCEP_ASSERT_MSG(dst != p.trace, "self-sends are not modeled");
  OCEP_ASSERT(dst < procs_.size());
  if (is_process(dst)) {
    Channel& ch = channel(p.trace, dst);
    if (ch.load >= config_.channel_capacity) {
      // The network cannot buffer the message: the blocking send blocks.
      // Emit the observation event; the send completes when room frees up.
      p.blocked_send = true;
      p.send_result.blocked = true;
      p.send_result.blocked_event =
          emit(p.trace, EventKind::kBlockedSend, pool_->intern("blocked_send"),
               store_.trace_name(dst), kNoMessage, nullptr);
      ch.blocked_senders.push_back(p.trace);
      return;
    }
    ch.load += 1;
  }
  complete_send(p, now);
}

void Sim::complete_send(ProcState& p, std::uint64_t now) {
  const TraceId dst = p.op_peer;
  const std::uint64_t id = next_message_++;
  const EventId send_event =
      emit(p.trace, EventKind::kSend, p.op_type, p.op_text, id, nullptr);
  Message msg;
  msg.id = id;
  msg.from = p.trace;
  msg.to = dst;
  msg.type = p.op_type;
  msg.text = p.op_text;
  msg.payload = p.op_payload;
  msg.clock = clocks_[p.trace];
  in_transit_.emplace(id, std::move(msg));
  schedule_arrival(p.trace, dst, id, now);
  p.send_result.send_event = send_event;
  if (!p.blocked_send) {
    p.send_result.blocked = false;
  }
  p.blocked_send = false;
  resume(p, now);
}

void Sim::exec_recv(ProcState& p, std::uint64_t now) {
  std::uint64_t pick = 0;
  bool found = false;
  if (p.op_peer == kAnySource) {
    auto& q = arrived_any_[p.trace];
    while (!q.empty() && in_transit_.find(q.front()) == in_transit_.end()) {
      q.pop_front();  // consumed through a named-source receive earlier
    }
    if (!q.empty()) {
      pick = q.front();
      found = true;
    }
  } else {
    Channel& ch = channel(p.op_peer, p.trace);
    if (!ch.arrived.empty()) {
      pick = ch.arrived.front();
      found = true;
    }
  }
  if (found) {
    consume(p, pick, now);
  } else {
    p.waiting_recv = true;
    p.waiting_src = p.op_peer;
  }
}

void Sim::consume(ProcState& p, std::uint64_t msg_id, std::uint64_t now) {
  auto it = in_transit_.find(msg_id);
  OCEP_ASSERT(it != in_transit_.end());
  const Message msg = std::move(it->second);
  in_transit_.erase(it);

  Channel& ch = channel(msg.from, p.trace);
  OCEP_ASSERT(!ch.arrived.empty() && ch.arrived.front() == msg_id);
  ch.arrived.pop_front();

  const EventId receive_event = emit(p.trace, EventKind::kReceive, p.op_type,
                                     p.op_text, msg_id, &msg.clock);
  p.incoming = Incoming{msg.from, msg.type,  msg.text,
                        msg.payload, msg_id, receive_event};

  // The consumed message frees buffer room; the oldest blocked sender on
  // this channel may now complete its send.
  OCEP_ASSERT(ch.load > 0);
  ch.load -= 1;
  if (!ch.blocked_senders.empty()) {
    const TraceId sender = ch.blocked_senders.front();
    ch.blocked_senders.pop_front();
    ch.load += 1;
    complete_send(*procs_[sender], now);
  }
  resume(p, now);
}

void Sim::exec_acquire(ProcState& p, std::uint64_t now) {
  const auto sem_index = static_cast<std::size_t>(p.op_sem);
  OCEP_ASSERT(sem_index < sems_.size());
  Semaphore& sem = sems_[sem_index];
  const std::uint64_t id = next_message_++;
  p.acquire_result.request_event =
      emit(p.trace, EventKind::kSend, pool_->intern("sem_request"),
           store_.trace_name(sem.trace), id, nullptr);
  Message msg;
  msg.id = id;
  msg.from = p.trace;
  msg.to = sem.trace;
  msg.type = pool_->intern("sem_request");
  msg.clock = clocks_[p.trace];
  in_transit_.emplace(id, std::move(msg));
  schedule_arrival(p.trace, sem.trace, id, now);
  p.waiting_grant = true;
}

void Sim::exec_release(ProcState& p, std::uint64_t now) {
  const auto sem_index = static_cast<std::size_t>(p.op_sem);
  OCEP_ASSERT(sem_index < sems_.size());
  Semaphore& sem = sems_[sem_index];
  const std::uint64_t id = next_message_++;
  p.local_event =
      emit(p.trace, EventKind::kSend, pool_->intern("sem_release"),
           store_.trace_name(sem.trace), id, nullptr);
  Message msg;
  msg.id = id;
  msg.from = p.trace;
  msg.to = sem.trace;
  msg.type = pool_->intern("sem_release");
  msg.clock = clocks_[p.trace];
  in_transit_.emplace(id, std::move(msg));
  schedule_arrival(p.trace, sem.trace, id, now);
  resume(p, now);
}

void Sim::on_arrival(std::uint64_t msg_id, std::uint64_t now) {
  auto it = in_transit_.find(msg_id);
  OCEP_ASSERT(it != in_transit_.end());
  const TraceId to = it->second.to;
  if (is_process(to)) {
    ProcState& p = *procs_[to];
    const Symbol grant = pool_->intern("sem_grant");
    if (it->second.type == grant) {
      // Semaphore grant: complete the pending acquire.
      const Message msg = std::move(it->second);
      in_transit_.erase(it);
      OCEP_ASSERT(p.waiting_grant);
      p.acquire_result.grant_event = emit(
          p.trace, EventKind::kReceive, grant, msg.text, msg.id, &msg.clock);
      p.waiting_grant = false;
      resume(p, now);
      return;
    }
    // Application message: queue it and wake a matching waiting receive.
    Channel& ch = channel(it->second.from, to);
    ch.arrived.push_back(msg_id);
    arrived_any_[to].push_back(msg_id);
    if (p.waiting_recv && (p.waiting_src == kAnySource ||
                           p.waiting_src == it->second.from)) {
      p.waiting_recv = false;
      consume(p, msg_id, now);
    }
    return;
  }
  // Semaphore trace.
  for (Semaphore& sem : sems_) {
    if (sem.trace == to) {
      const Message msg = std::move(it->second);
      in_transit_.erase(it);
      on_sem_arrival(sem, msg, now);
      return;
    }
  }
  OCEP_ASSERT_MSG(false, "message to unknown passive trace");
}

void Sim::on_sem_arrival(Semaphore& sem, const Message& msg,
                         std::uint64_t now) {
  emit(sem.trace, EventKind::kReceive, msg.type,
       store_.trace_name(msg.from), msg.id, &msg.clock);
  if (msg.type == pool_->intern("sem_request")) {
    if (sem.permits > 0) {
      sem.permits -= 1;
      grant(sem, msg.from, now);
    } else {
      sem.waiters.push_back(msg.from);
    }
  } else {  // release
    if (!sem.waiters.empty()) {
      const TraceId next = sem.waiters.front();
      sem.waiters.pop_front();
      grant(sem, next, now);
    } else {
      sem.permits += 1;
    }
  }
}

void Sim::grant(Semaphore& sem, TraceId to, std::uint64_t now) {
  const std::uint64_t id = next_message_++;
  const Symbol grant_sym = pool_->intern("sem_grant");
  emit(sem.trace, EventKind::kSend, grant_sym, store_.trace_name(to), id,
       nullptr);
  Message msg;
  msg.id = id;
  msg.from = sem.trace;
  msg.to = to;
  msg.type = grant_sym;
  msg.text = store_.trace_name(sem.trace);
  msg.clock = clocks_[sem.trace];
  in_transit_.emplace(id, std::move(msg));
  schedule_arrival(sem.trace, to, id, now);
}

EventId Sim::emit(TraceId t, EventKind kind, Symbol type, Symbol text,
                  std::uint64_t message, const VectorClock* merge) {
  VectorClock& clock = clocks_[t];
  if (merge != nullptr) {
    clock.merge(*merge);
  }
  clock.tick(t);
  Event event;
  event.id = EventId{t, clock[t]};
  event.kind = kind;
  event.type = type;
  event.text = text;
  event.message = message;
  store_.append(event, clock);
  if (live_sink_ != nullptr) {
    live_sink_->on_event(event, clock);
  }
  ++events_;
  return event.id;
}

std::uint64_t Sim::latency() {
  return rng_.between(config_.min_latency, config_.max_latency);
}

Sim::Channel& Sim::channel(TraceId from, TraceId to) {
  return channels_[channel_key(from, to)];
}

}  // namespace ocep::sim
