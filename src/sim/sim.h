// Deterministic discrete-event simulator of a message-passing distributed
// system (substrate for the paper's §V evaluation).
//
// The simulated world matches the paper's model (§III): n sequential
// processes, no shared memory, no global clock, communication only by
// message passing.  On top of that it reproduces the two execution
// environments the paper instruments:
//
//  * MPI-like point-to-point communication: a blocking send returns as soon
//    as the network can buffer the message and blocks otherwise (the
//    behaviour that makes the random-walk deadlock "rarely visible",
//    §V-C.1).  Receives may name a source or use kAnySource
//    (MPI_ANY_SOURCE), which is what makes message races possible.
//  * µC++-like semaphores instrumented as separate traces (§V-C.3): an
//    acquire/release round-trips messages through the semaphore's own
//    trace, so critical sections are causally chained through it.
//
// Every primitive emits instrumented events with Fidge/Mattern timestamps
// into an EventStore (and optionally a live EventSink), in simulation-time
// order — a linearization of the partial order, exactly what POET delivers
// to its clients.
//
// Determinism: all randomness comes from the seeded Rng; the scheduler
// breaks time ties by submission order.  Same seed, same computation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/string_pool.h"
#include "poet/client.h"
#include "poet/event_store.h"
#include "sim/coro.h"

namespace ocep::sim {

/// Receive from any sender (MPI_ANY_SOURCE).
inline constexpr TraceId kAnySource = 0xffffffffU;

struct SimConfig {
  std::uint64_t seed = 1;
  /// Messages a directed process-to-process channel can hold before a
  /// blocking send stops returning immediately.
  std::uint32_t channel_capacity = 4;
  /// Message latency is uniform in [min_latency, max_latency] ticks; must
  /// be >= 1 so a receive is strictly later than its send.
  std::uint32_t min_latency = 1;
  std::uint32_t max_latency = 4;
  /// Local ticks consumed by each primitive before it takes effect.
  std::uint32_t op_cost = 1;
  /// Stop the run once this many events have been emitted (0 = no limit).
  std::uint64_t max_events = 0;
};

/// Handle to a semaphore registered with Sim.
enum class SemId : std::uint32_t {};

struct SendResult {
  EventId send_event;
  bool blocked = false;       ///< true if the send had to wait for buffer room
  EventId blocked_event = {}; ///< the kBlockedSend observation, if blocked
};

struct Incoming {
  TraceId from = 0;
  Symbol type = kEmptySymbol;  ///< the *send* event's type
  Symbol text = kEmptySymbol;  ///< the *send* event's text
  std::uint64_t payload = 0;
  std::uint64_t message = kNoMessage;
  EventId receive_event;
};

struct AcquireResult {
  EventId request_event;
  EventId grant_event;
};

enum class EndReason : std::uint8_t {
  kCompleted,   ///< every process body ran to completion
  kQuiescent,   ///< no scheduled work but some processes still blocked
  kEventLimit,  ///< max_events reached
};

/// Why a process was still blocked at the end of a quiescent run; this is
/// the simulator-side ground truth the completeness experiments check
/// OCEP's reports against.
struct BlockedInfo {
  TraceId trace = 0;
  enum class Kind : std::uint8_t { kSend, kRecv, kSemaphore } kind = Kind::kSend;
  TraceId peer = 0;           ///< send destination / named recv source
  EventId blocked_event = {}; ///< kBlockedSend event id (send blocks only)
};

struct RunResult {
  EndReason reason = EndReason::kCompleted;
  std::uint64_t events = 0;
  std::uint64_t end_time = 0;
  std::vector<BlockedInfo> blocked;
};

class Sim;

/// Per-process context passed to a process body; all simulated primitives
/// hang off it as awaitables.
class Proc {
 public:
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  [[nodiscard]] TraceId id() const noexcept { return trace_; }
  [[nodiscard]] Sim& sim() const noexcept { return *sim_; }

  /// Interning shortcut for event attributes.
  [[nodiscard]] Symbol sym(std::string_view s) const;

  // --- Awaitable primitives (valid only inside this process's body) ------

  /// Blocking point-to-point send.  co_await yields a SendResult.
  [[nodiscard]] auto send(TraceId dst, Symbol type,
                          Symbol text = kEmptySymbol,
                          std::uint64_t payload = 0);

  /// Blocking receive from `src` (or kAnySource).  The receive event is
  /// recorded with the given class attributes.  Yields an Incoming.
  [[nodiscard]] auto recv(TraceId src, Symbol type,
                          Symbol text = kEmptySymbol);

  /// Internal event of interest.  Yields the EventId.
  [[nodiscard]] auto local(Symbol type, Symbol text = kEmptySymbol);

  /// Semaphore acquire (P).  Yields an AcquireResult.
  [[nodiscard]] auto acquire(SemId sem);

  /// Semaphore release (V).  Yields the release send's EventId.
  [[nodiscard]] auto release(SemId sem);

  /// Pure passage of local time; emits no event.  Yields void.
  [[nodiscard]] auto delay(std::uint64_t ticks);

 private:
  friend class Sim;
  Proc(Sim& sim, TraceId trace) : sim_(&sim), trace_(trace) {}

  Sim* sim_;
  TraceId trace_;
};

using BodyFactory = std::function<ProcessBody(Proc&)>;

class Sim {
 public:
  Sim(StringPool& pool, SimConfig config);
  ~Sim();

  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;

  /// Registers a process trace with its body.  All registration must happen
  /// before run().
  TraceId add_process(std::string_view name, BodyFactory body);

  /// Registers a semaphore as a passive trace with `permits` initial
  /// permits.
  SemId add_semaphore(std::string_view name, std::uint32_t permits);

  /// Forward every emitted event to `sink` as the simulation runs (the
  /// "online monitoring" hookup).  May be null.
  void set_live_sink(EventSink* sink) { live_sink_ = sink; }

  /// Runs to completion, quiescence, or the event limit.
  RunResult run();

  /// The recorded computation (POET's store).
  [[nodiscard]] const EventStore& store() const noexcept { return store_; }

  [[nodiscard]] StringPool& pool() const noexcept { return *pool_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Trace id backing a semaphore (to reference it in patterns).
  [[nodiscard]] TraceId semaphore_trace(SemId sem) const;

  /// Name symbol of any trace.
  [[nodiscard]] Symbol trace_name(TraceId t) const {
    return store_.trace_name(t);
  }

 private:
  friend class Proc;

  enum class OpKind : std::uint8_t {
    kNone, kSend, kRecv, kLocal, kAcquire, kRelease, kDelay,
  };

  struct ProcState {
    TraceId trace = 0;
    std::unique_ptr<Proc> ctx;
    BodyFactory factory;
    ProcessBody body;
    std::uint64_t now = 0;

    // Current primitive, latched by the awaitable.
    OpKind op = OpKind::kNone;
    TraceId op_peer = 0;
    Symbol op_type = kEmptySymbol;
    Symbol op_text = kEmptySymbol;
    std::uint64_t op_payload = 0;
    SemId op_sem{};
    std::uint64_t op_delay = 0;

    // Result slots read by await_resume.
    SendResult send_result;
    Incoming incoming;
    AcquireResult acquire_result;
    EventId local_event;

    // Blocking state.
    bool waiting_recv = false;
    TraceId waiting_src = 0;
    bool waiting_grant = false;
    bool blocked_send = false;
    std::uint64_t arrived_seq = 0;  // per-proc arrival order for kAnySource
  };

  struct Semaphore {
    TraceId trace = 0;
    std::uint32_t permits = 0;
    std::deque<TraceId> waiters;  // processes queued on acquire
  };

  struct Message {
    std::uint64_t id = 0;
    TraceId from = 0;
    TraceId to = 0;
    Symbol type = kEmptySymbol;
    Symbol text = kEmptySymbol;
    std::uint64_t payload = 0;
    VectorClock clock;  // sender's clock at the send event
  };

  struct Channel {
    std::uint32_t load = 0;  // sent (or arrived) and not yet consumed
    std::deque<std::uint64_t> arrived;        // receivable message ids
    std::deque<TraceId> blocked_senders;      // procs waiting for room
    std::uint64_t last_arrival = 0;  // enforces MPI's non-overtaking rule
  };

  enum class ActionKind : std::uint8_t { kExecOp, kArrival };

  struct Action {
    std::uint64_t time = 0;
    std::uint64_t seq = 0;
    ActionKind kind = ActionKind::kExecOp;
    TraceId trace = 0;        // kExecOp: which process
    std::uint64_t message = 0;  // kArrival: which message
  };

  struct ActionAfter {
    bool operator()(const Action& a, const Action& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // --- Awaitable machinery ------------------------------------------------
  template <typename Result>
  struct Awaiter;
  template <typename Result>
  Awaiter<Result> make_awaiter(ProcState& p);

  void submit_current_op(ProcState& p);
  void schedule(std::uint64_t time, ActionKind kind, TraceId trace,
                std::uint64_t message);
  /// Schedules a message arrival with random latency, clamped so messages
  /// between one (from, to) pair never overtake each other.
  void schedule_arrival(TraceId from, TraceId to, std::uint64_t message,
                        std::uint64_t now);
  void resume(ProcState& p, std::uint64_t at);

  void exec_op(ProcState& p, std::uint64_t now);
  void exec_send(ProcState& p, std::uint64_t now);
  void exec_recv(ProcState& p, std::uint64_t now);
  void exec_acquire(ProcState& p, std::uint64_t now);
  void exec_release(ProcState& p, std::uint64_t now);

  void on_arrival(std::uint64_t msg_id, std::uint64_t now);
  void on_proc_arrival(ProcState& p, Message msg, std::uint64_t now);
  void on_sem_arrival(Semaphore& sem, const Message& msg, std::uint64_t now);

  void complete_send(ProcState& p, std::uint64_t now);
  void consume(ProcState& p, std::uint64_t msg_id, std::uint64_t now);
  void grant(Semaphore& sem, TraceId to, std::uint64_t now);

  EventId emit(TraceId t, EventKind kind, Symbol type, Symbol text,
               std::uint64_t message, const VectorClock* merge);

  std::uint64_t latency();
  Channel& channel(TraceId from, TraceId to);
  [[nodiscard]] bool is_process(TraceId t) const {
    return t < procs_.size() && procs_[t] != nullptr;
  }

  StringPool* pool_;
  SimConfig config_;
  Rng rng_;
  EventStore store_;
  EventSink* live_sink_ = nullptr;

  // procs_ is indexed by TraceId; semaphore traces have a null entry.
  std::vector<std::unique_ptr<ProcState>> procs_;
  std::vector<Semaphore> sems_;
  std::vector<VectorClock> clocks_;

  std::priority_queue<Action, std::vector<Action>, ActionAfter> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_message_ = 1;
  std::unordered_map<std::uint64_t, Message> in_transit_;
  std::unordered_map<std::uint64_t, Channel> channels_;
  // Per-process queue of arrived messages for kAnySource, in arrival order.
  std::vector<std::deque<std::uint64_t>> arrived_any_;

  std::uint64_t events_ = 0;
  std::uint64_t now_ = 0;
  bool running_ = false;
  bool started_ = false;
};

// --- Awaitable definitions (must see Sim's definition) ---------------------

template <typename Result>
struct Sim::Awaiter {
  Sim* sim;
  ProcState* proc;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    sim->submit_current_op(*proc);
  }
  Result await_resume() const {
    if constexpr (std::is_same_v<Result, SendResult>) {
      return proc->send_result;
    } else if constexpr (std::is_same_v<Result, Incoming>) {
      return proc->incoming;
    } else if constexpr (std::is_same_v<Result, AcquireResult>) {
      return proc->acquire_result;
    } else if constexpr (std::is_same_v<Result, EventId>) {
      return proc->local_event;
    }
  }
};

inline auto Proc::send(TraceId dst, Symbol type, Symbol text,
                       std::uint64_t payload) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kSend;
  p.op_peer = dst;
  p.op_type = type;
  p.op_text = text;
  p.op_payload = payload;
  return Sim::Awaiter<SendResult>{sim_, &p};
}

inline auto Proc::recv(TraceId src, Symbol type, Symbol text) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kRecv;
  p.op_peer = src;
  p.op_type = type;
  p.op_text = text;
  return Sim::Awaiter<Incoming>{sim_, &p};
}

inline auto Proc::local(Symbol type, Symbol text) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kLocal;
  p.op_type = type;
  p.op_text = text;
  return Sim::Awaiter<EventId>{sim_, &p};
}

inline auto Proc::acquire(SemId sem) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kAcquire;
  p.op_sem = sem;
  return Sim::Awaiter<AcquireResult>{sim_, &p};
}

inline auto Proc::release(SemId sem) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kRelease;
  p.op_sem = sem;
  return Sim::Awaiter<EventId>{sim_, &p};
}

inline auto Proc::delay(std::uint64_t ticks) {
  auto& p = *sim_->procs_[trace_];
  p.op = Sim::OpKind::kDelay;
  p.op_delay = ticks;
  return Sim::Awaiter<EventId>{sim_, &p};
}

}  // namespace ocep::sim
