// End-to-end chaos harness: replays a recorded computation through
// SessionServer -> FaultyChannel -> SessionClient -> Monitor and reports
// what survived.
//
// The harness owns the pump loop and its two subtleties:
//  * Resync requests are queued by the transport and answered between
//    feed() calls, never from inside one — re-entering the client's frame
//    parser from its own release path would corrupt its state.
//  * The channel is closed (finish_input) only after the server finished
//    and the reorder hold was flushed, then the client is ticked until it
//    reaches a terminal state: fully recovered, or degraded-and-flushed.
//
// Everything is deterministic in the fault seed, so a failing chaos run
// reproduces from its (seed, fault spec) pair alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/string_pool.h"
#include "core/monitor.h"
#include "poet/event_store.h"
#include "poet/session.h"
#include "testing/faulty_channel.h"

namespace ocep::testing {

struct ChaosOptions {
  FaultSpec faults;
  SessionConfig session;
  MonitorConfig monitor;
  /// Bytes per SessionClient::feed() call; small values exercise partial-
  /// frame reassembly.  0 = hand each delivered frame over in one piece.
  std::size_t feed_chunk = 0;
  /// Safety bound on post-stream ticks before the harness gives up and
  /// reports done = false (a livelocked client, which the chaos tests
  /// treat as failure).
  std::uint64_t settle_ticks = 65536;
};

struct ChaosResult {
  bool done = false;       ///< client reached a terminal state
  bool degraded = false;   ///< sheds / free-run / exhausted resyncs occurred
  IngestStats ingest;
  FaultyChannel::Stats faults;
  std::uint64_t events_delivered = 0;  ///< events the monitor saw
  /// Sorted representative-match signatures (see match_signature).
  std::vector<std::string> matches;
};

/// Formats pattern `index`'s representative subset as a sorted list of
/// "trace:index;trace:index;..." binding signatures — a set-comparable
/// fingerprint that is stable across independent runs.
[[nodiscard]] std::vector<std::string> match_signature(Monitor& monitor,
                                                       std::size_t index);

/// Replays `source` (in arrival order) through the faulty session and a
/// monitor matching `pattern_text`.  Deterministic in options.faults.seed.
[[nodiscard]] ChaosResult run_chaos(const EventStore& source,
                                    StringPool& pool,
                                    const std::string& pattern_text,
                                    const ChaosOptions& options);

/// Clean-channel reference: the same monitor fed directly, no session.
[[nodiscard]] std::vector<std::string> clean_matches(
    const EventStore& source, StringPool& pool,
    const std::string& pattern_text);

/// True when every signature in `subset` also appears in `superset`
/// (both sorted, as match_signature returns them).
[[nodiscard]] bool is_subset_of(const std::vector<std::string>& subset,
                                const std::vector<std::string>& superset);

}  // namespace ocep::testing
