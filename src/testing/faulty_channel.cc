#include "testing/faulty_channel.h"

namespace ocep::testing {

void FaultyChannel::write(std::string_view bytes) {
  ++stats_.frames;
  stats_.bytes_in += bytes.size();

  if (spec_.disconnect_every > 0 &&
      stats_.frames % spec_.disconnect_every == 0) {
    burst_left_ = spec_.disconnect_burst;
  }
  if (burst_left_ > 0) {
    --burst_left_;
    ++stats_.disconnect_losses;
    return;
  }
  if (spec_.drop_per_1000 > 0 && rng_.chance(spec_.drop_per_1000, 1000)) {
    ++stats_.dropped;
    return;
  }

  std::string frame(bytes);
  if (spec_.truncate_per_1000 > 0 && frame.size() > 1 &&
      rng_.chance(spec_.truncate_per_1000, 1000)) {
    frame.resize(rng_.between(1, frame.size() - 1));
    ++stats_.truncated;
  }
  if (spec_.bitflip_per_1000 > 0 && !frame.empty() &&
      rng_.chance(spec_.bitflip_per_1000, 1000)) {
    const std::size_t pos = rng_.below(frame.size());
    frame[pos] = static_cast<char>(
        static_cast<unsigned char>(frame[pos]) ^ (1U << rng_.below(8)));
    ++stats_.bit_flips;
  }

  if (spec_.reorder_per_1000 > 0 && !holding_ &&
      rng_.chance(spec_.reorder_per_1000, 1000)) {
    // Hold this frame; it goes out right after the next one (a one-frame
    // transposition, the common reordering a datagram path produces).
    held_ = std::move(frame);
    holding_ = true;
    ++stats_.reordered;
    return;
  }

  const bool duplicate = spec_.duplicate_per_1000 > 0 &&
                         rng_.chance(spec_.duplicate_per_1000, 1000);
  deliver(frame);
  if (duplicate) {
    deliver(frame);
    ++stats_.duplicated;
  }
  if (holding_) {
    holding_ = false;
    deliver(held_);
  }
}

void FaultyChannel::flush() {
  if (holding_) {
    holding_ = false;
    deliver(held_);
  }
}

void FaultyChannel::deliver(std::string_view frame) {
  stats_.bytes_out += frame.size();
  downstream_.write(frame);
}

}  // namespace ocep::testing
