#include "testing/chaos_harness.h"

#include <algorithm>
#include <utility>

namespace ocep::testing {
namespace {

/// Forwards delivered bytes into the client, optionally re-chunked.
/// Buffers until the client exists: the server's HELLO is emitted from its
/// constructor, before the client can be wired up.
class ClientFeed final : public ByteSink {
 public:
  void write(std::string_view bytes) override {
    if (client == nullptr) {
      pending.append(bytes);
      return;
    }
    if (chunk == 0) {
      client->feed(bytes);
      return;
    }
    while (!bytes.empty()) {
      const std::size_t take = std::min(chunk, bytes.size());
      client->feed(bytes.substr(0, take));
      bytes.remove_prefix(take);
    }
  }

  void drain() {
    if (client != nullptr && !pending.empty()) {
      std::string buffered = std::move(pending);
      pending.clear();
      write(buffered);
    }
  }

  SessionClient* client = nullptr;
  std::size_t chunk = 0;
  std::string pending;
};

/// Queues resync requests so the harness answers them between feeds.
class QueueTransport final : public ResyncTransport {
 public:
  void request_resync(const ResyncRequest& request) override {
    requests.push_back(request);
  }
  std::vector<ResyncRequest> requests;
};

}  // namespace

std::vector<std::string> match_signature(Monitor& monitor,
                                         std::size_t index) {
  std::vector<std::string> out;
  for (const Match& match : monitor.matcher(index).subset().matches()) {
    std::string sig;
    for (const EventId id : match.bindings) {
      sig += std::to_string(id.trace) + ":" + std::to_string(id.index) + ";";
    }
    out.push_back(std::move(sig));
  }
  std::sort(out.begin(), out.end());
  return out;
}

ChaosResult run_chaos(const EventStore& source, StringPool& pool,
                      const std::string& pattern_text,
                      const ChaosOptions& options) {
  Monitor monitor(pool, options.monitor, source.storage());
  monitor.add_pattern(pattern_text);

  SessionConfig session = options.session;
  if (session.linearizer.shed_type == kEmptySymbol) {
    session.linearizer.shed_type = pool.intern("__shed");
  }

  std::vector<Symbol> names;
  for (TraceId t = 0; t < source.trace_count(); ++t) {
    names.push_back(source.trace_name(t));
  }

  ClientFeed feed;
  feed.chunk = options.feed_chunk;
  FaultyChannel channel(feed, options.faults);
  QueueTransport transport;
  SessionServer server(channel, pool, names, session);
  SessionClient client(monitor, pool, transport, session);
  monitor.set_ingest_source([&client] { return client.stats(); });
  feed.client = &client;
  feed.drain();  // the HELLO buffered while the client did not exist yet

  const auto serve = [&] {
    while (!transport.requests.empty()) {
      const ResyncRequest request = transport.requests.front();
      transport.requests.erase(transport.requests.begin());
      server.handle_resync(request);
    }
  };

  const std::uint64_t total = source.event_count();
  for (std::uint64_t pos = 0; pos < total; ++pos) {
    const EventId id = source.arrival(pos);
    server.write(source.event(id), source.clock(id));
    serve();
  }
  server.finish();
  channel.flush();
  serve();

  // The forward stream is over; let the client recover or degrade.  Every
  // tick may fire a resync whose snapshot frames arrive through the same
  // faulty channel, so keep serving between ticks.
  client.finish_input();
  serve();
  std::uint64_t ticks = 0;
  while (!client.done() && ticks < options.settle_ticks) {
    client.tick();
    serve();
    ++ticks;
  }

  monitor.drain();
  ChaosResult result;
  result.done = client.done();
  result.degraded = client.degraded();
  result.ingest = client.stats();
  result.faults = channel.stats();
  result.events_delivered = monitor.events_seen();
  result.matches = match_signature(monitor, 0);
  return result;
}

std::vector<std::string> clean_matches(const EventStore& source,
                                       StringPool& pool,
                                       const std::string& pattern_text) {
  Monitor monitor(pool, source.storage());
  monitor.add_pattern(pattern_text);
  std::vector<Symbol> names;
  for (TraceId t = 0; t < source.trace_count(); ++t) {
    names.push_back(source.trace_name(t));
  }
  monitor.on_traces(names);
  const std::uint64_t total = source.event_count();
  for (std::uint64_t pos = 0; pos < total; ++pos) {
    const EventId id = source.arrival(pos);
    monitor.on_event(source.event(id), source.clock(id));
  }
  monitor.drain();
  return match_signature(monitor, 0);
}

bool is_subset_of(const std::vector<std::string>& subset,
                  const std::vector<std::string>& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

}  // namespace ocep::testing
