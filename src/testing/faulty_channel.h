// Deterministic fault injection for the session byte channel.
//
// A FaultyChannel sits between a SessionServer and whatever feeds the
// SessionClient, mangling the forward byte stream with seeded faults: whole
// frames dropped, duplicated, reordered, or black-holed in disconnect
// bursts; payload bytes bit-flipped or truncated.  Every decision comes
// from one Rng seeded by FaultSpec::seed, so a chaos run replays exactly —
// a failing seed in CI is a local repro, not a flake.
//
// The unit of injection is one write() call.  SessionServer emits exactly
// one write per frame, so fault rates read as per-frame probabilities.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "poet/session.h"

namespace ocep::testing {

/// Per-frame fault probabilities, in parts per thousand.
struct FaultSpec {
  std::uint64_t seed = 1;
  std::uint32_t drop_per_1000 = 0;       ///< frame vanishes entirely
  std::uint32_t duplicate_per_1000 = 0;  ///< frame delivered twice
  std::uint32_t reorder_per_1000 = 0;    ///< frame held, delivered after next
  std::uint32_t bitflip_per_1000 = 0;    ///< one random bit flipped
  std::uint32_t truncate_per_1000 = 0;   ///< only a random prefix delivered
  /// Every Nth frame starts a disconnect: that frame and the next
  /// `disconnect_burst - 1` are black-holed (0 = never disconnect).
  std::uint32_t disconnect_every = 0;
  std::uint32_t disconnect_burst = 16;
};

class FaultyChannel final : public ByteSink {
 public:
  struct Stats {
    std::uint64_t frames = 0;       ///< writes seen
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t bit_flips = 0;
    std::uint64_t truncated = 0;
    std::uint64_t disconnect_losses = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;

    [[nodiscard]] std::uint64_t faults() const noexcept {
      return dropped + duplicated + reordered + bit_flips + truncated +
             disconnect_losses;
    }
  };

  FaultyChannel(ByteSink& downstream, const FaultSpec& spec)
      : downstream_(downstream), spec_(spec), rng_(spec.seed) {}

  void write(std::string_view bytes) override;

  /// Delivers a frame still held for reordering; call when the stream
  /// ends, or the held frame is lost without ever counting as dropped.
  void flush();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void deliver(std::string_view frame);

  ByteSink& downstream_;
  FaultSpec spec_;
  Rng rng_;
  std::string held_;
  bool holding_ = false;
  std::uint32_t burst_left_ = 0;
  Stats stats_;
};

}  // namespace ocep::testing
