#include "metrics/boxplot.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace ocep::metrics {
namespace {

/// Linear-interpolated quantile over sorted samples (type-7, the common
/// spreadsheet/NumPy default).
double quantile(const std::vector<double>& sorted, double q) {
  OCEP_ASSERT(!sorted.empty());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(below);
  if (below + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[below] + fraction * (sorted[below + 1] - sorted[below]);
}

}  // namespace

Boxplot boxplot(std::vector<double>& samples) {
  Boxplot out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  out.min = samples.front();
  out.max = samples.back();
  out.q1 = quantile(samples, 0.25);
  out.median = quantile(samples, 0.5);
  out.q3 = quantile(samples, 0.75);
  out.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());

  const double iqr = out.q3 - out.q1;
  const double top_fence = out.q3 + 1.5 * iqr;
  const double bottom_fence = out.q1 - 1.5 * iqr;
  // Whiskers: the extreme samples still inside the 1.5 x IQR fences.
  out.top_whisker = out.q3;
  for (const double v : samples) {  // sorted ascending
    if (v <= top_fence) {
      out.top_whisker = v;
    }
  }
  out.bottom_whisker = out.q1;
  for (const double v : samples) {
    if (v >= bottom_fence) {
      out.bottom_whisker = v;
      break;
    }
  }
  out.outliers = static_cast<std::size_t>(
      std::count_if(samples.begin(), samples.end(),
                    [top_fence](double v) { return v > top_fence; }));
  return out;
}

}  // namespace ocep::metrics
