// Boxplot statistics, matching the paper's presentation (§V-C): the centre
// rectangle spans the inter-quartile range with the median inside, the
// whiskers sit 1.5 x IQR beyond the quartiles, and everything outside is
// an outlier.  Fig 10 tabulates Q1 / Med / Q3 / Top-Whisker / Max.
#pragma once

#include <cstdint>
#include <vector>

namespace ocep::metrics {

struct Boxplot {
  std::size_t count = 0;
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  /// Largest sample at or below q3 + 1.5 * IQR (the drawn whisker mark).
  double top_whisker = 0;
  /// Smallest sample at or above q1 - 1.5 * IQR.
  double bottom_whisker = 0;
  double max = 0;
  double mean = 0;
  std::size_t outliers = 0;  ///< samples above the top whisker
};

/// Computes boxplot statistics; `samples` is consumed (sorted in place).
[[nodiscard]] Boxplot boxplot(std::vector<double>& samples);

/// Convenience accumulator for wall-clock samples in microseconds.
class LatencyRecorder {
 public:
  void add(double microseconds) { samples_.push_back(microseconds); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Computes the boxplot (sorts the internal buffer).
  [[nodiscard]] Boxplot summarize() { return boxplot(samples_); }
  void clear() { samples_.clear(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace ocep::metrics
