// Wall-clock timing helper (the paper's execution-time metric, §V-B).
#pragma once

#include <chrono>
#include <cstdint>

namespace ocep::metrics {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed wall-clock time in microseconds.
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1000.0;
  }

  /// Elapsed wall-clock time in whole nanoseconds (histogram unit).
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        clock::now() - start_);
    return static_cast<std::uint64_t>(ns.count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ocep::metrics
