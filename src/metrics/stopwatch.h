// Wall-clock timing helper (the paper's execution-time metric, §V-B).
#pragma once

#include <chrono>

namespace ocep::metrics {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed wall-clock time in microseconds.
  [[nodiscard]] double elapsed_us() const {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        clock::now() - start_);
    return static_cast<double>(ns.count()) / 1000.0;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ocep::metrics
