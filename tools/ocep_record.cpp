// ocep_record — run one of the instrumented case-study applications and
// save the collected trace-event data as a POET-style dump (paper §V-B).
//
//   ocep_record --app deadlock|race|atomicity|ordering
//               [--traces N] [--events E] [--seed S] --out FILE
//
// The dump can then be inspected with ocep_inspect and matched offline
// with ocep_match, mirroring the paper's collect-once / replay-many
// methodology.
//
// Live mode: `--serve HOST:PORT --tenant NAME [--pattern FILE |
// --pattern-text SRC] [--write-chunk N]` streams the recorded computation
// to a running ocep_served daemon over the session protocol instead of
// writing a dump, and waits for the server's FIN verdict.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "common/error.h"
#include "common/flags.h"
#include "net/client.h"
#include "poet/dump.h"
#include "sim/sim.h"

using namespace ocep;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Splits "HOST:PORT" (throws on a malformed spec).
std::pair<std::string, std::uint16_t> split_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw Error("--serve expects HOST:PORT, got '" + spec + "'");
  }
  const int port = std::stoi(spec.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw Error("--serve port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string app = flags.get_string("app", "ordering");
    const auto traces =
        static_cast<std::uint32_t>(flags.get_int("traces", 10));
    const auto events =
        static_cast<std::uint64_t>(flags.get_int("events", 50000));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const std::string out_path = flags.get_string("out", "computation.poet");
    const std::string serve = flags.get_string("serve", "");
    const std::string tenant = flags.get_string("tenant", app);
    const std::string pattern_path = flags.get_string("pattern", "");
    std::string pattern_text = flags.get_string("pattern-text", "");
    const auto write_chunk =
        static_cast<std::size_t>(flags.get_int("write-chunk", 0));
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = seed;
    config.channel_capacity = 2;
    config.max_events = events;
    sim::Sim sim(pool, config);

    if (app == "deadlock") {
      apps::RandomWalkParams params;
      params.processes = traces;
      params.steps = std::max<std::uint64_t>(8, 2 * events / (traces * 9));
      apps::setup_random_walk(sim, params);
    } else if (app == "race") {
      apps::RaceParams params;
      params.traces = traces;
      params.messages_each =
          std::max<std::uint64_t>(4, (10 * events) / (23 * (traces - 1)));
      apps::setup_race_bench(sim, params);
    } else if (app == "atomicity") {
      apps::AtomicityParams params;
      params.workers = traces - 1;
      params.iterations =
          std::max<std::uint64_t>(4, (10 * events) / (83 * params.workers));
      apps::setup_atomicity(sim, params);
    } else if (app == "ordering") {
      apps::OrderingParams params;
      params.followers = traces - 1;
      params.requests_each =
          std::max<std::uint64_t>(2, (10 * events) / (63 * params.followers));
      apps::setup_leader_follower(sim, params);
    } else {
      throw Error("unknown --app '" + app +
                  "' (expected deadlock|race|atomicity|ordering)");
    }

    const sim::RunResult result = sim.run();

    if (!serve.empty()) {
      if (pattern_text.empty() && !pattern_path.empty()) {
        pattern_text = read_file(pattern_path);
      }
      net::ConnectorConfig connector;
      std::tie(connector.host, connector.port) = split_endpoint(serve);
      connector.tenant = tenant;
      if (!pattern_text.empty()) {
        connector.patterns.push_back(pattern_text);
      }
      connector.write_chunk = write_chunk;
      const net::StreamResult streamed =
          net::stream_store(sim.store(), pool, connector);
      if (streamed.ack.status == net::AckStatus::kRejected) {
        throw Error("server rejected the handshake: " + streamed.ack.message);
      }
      std::printf("%s: streamed %llu events as tenant '%s' -> %s "
                  "(fin: %s%s%s)\n",
                  app.c_str(),
                  static_cast<unsigned long long>(streamed.events_sent),
                  tenant.c_str(), serve.c_str(),
                  streamed.fin_received
                      ? (streamed.fin.degraded ? "degraded" : "clean")
                      : "none",
                  streamed.fin.message.empty() ? "" : ": ",
                  streamed.fin.message.c_str());
      return streamed.fin_received && !streamed.fin.degraded ? 0 : 2;
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      throw Error("cannot open '" + out_path + "' for writing");
    }
    dump(sim.store(), pool, out);
    out.flush();
    std::printf("%s: recorded %llu events on %zu traces -> %s\n",
                app.c_str(), static_cast<unsigned long long>(result.events),
                sim.store().trace_count(), out_path.c_str());
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_record: %s\n", error.what());
    return 1;
  }
}
