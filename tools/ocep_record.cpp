// ocep_record — run one of the instrumented case-study applications and
// save the collected trace-event data as a POET-style dump (paper §V-B).
//
//   ocep_record --app deadlock|race|atomicity|ordering
//               [--traces N] [--events E] [--seed S] --out FILE
//
// The dump can then be inspected with ocep_inspect and matched offline
// with ocep_match, mirroring the paper's collect-once / replay-many
// methodology.
#include <cstdio>
#include <fstream>
#include <string>

#include "apps/apps.h"
#include "common/error.h"
#include "common/flags.h"
#include "poet/dump.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string app = flags.get_string("app", "ordering");
    const auto traces =
        static_cast<std::uint32_t>(flags.get_int("traces", 10));
    const auto events =
        static_cast<std::uint64_t>(flags.get_int("events", 50000));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const std::string out_path = flags.get_string("out", "computation.poet");
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = seed;
    config.channel_capacity = 2;
    config.max_events = events;
    sim::Sim sim(pool, config);

    if (app == "deadlock") {
      apps::RandomWalkParams params;
      params.processes = traces;
      params.steps = std::max<std::uint64_t>(8, 2 * events / (traces * 9));
      apps::setup_random_walk(sim, params);
    } else if (app == "race") {
      apps::RaceParams params;
      params.traces = traces;
      params.messages_each =
          std::max<std::uint64_t>(4, (10 * events) / (23 * (traces - 1)));
      apps::setup_race_bench(sim, params);
    } else if (app == "atomicity") {
      apps::AtomicityParams params;
      params.workers = traces - 1;
      params.iterations =
          std::max<std::uint64_t>(4, (10 * events) / (83 * params.workers));
      apps::setup_atomicity(sim, params);
    } else if (app == "ordering") {
      apps::OrderingParams params;
      params.followers = traces - 1;
      params.requests_each =
          std::max<std::uint64_t>(2, (10 * events) / (63 * params.followers));
      apps::setup_leader_follower(sim, params);
    } else {
      throw Error("unknown --app '" + app +
                  "' (expected deadlock|race|atomicity|ordering)");
    }

    const sim::RunResult result = sim.run();
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      throw Error("cannot open '" + out_path + "' for writing");
    }
    dump(sim.store(), pool, out);
    out.flush();
    std::printf("%s: recorded %llu events on %zu traces -> %s\n",
                app.c_str(), static_cast<unsigned long long>(result.events),
                sim.store().trace_count(), out_path.c_str());
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_record: %s\n", error.what());
    return 1;
  }
}
