// ocep_draw — render a window of a recorded computation as an ASCII
// process-time diagram (the paper's Figs 3/5 style), one column per trace,
// one row per delivered event.
//
//   ocep_draw --dump FILE [--from N] [--count M] [--traces-limit K]
//
// Sends and receives are annotated with their message ids so partner pairs
// can be followed visually; `*` marks communication events.
//
//   seq   | P0           P1           P2
//   ------+--------------------------------------
//   12    | walker>7     .            .
//   13    | .            walker<7     .
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/flags.h"
#include "poet/dump.h"

using namespace ocep;

namespace {

constexpr std::size_t kColumnWidth = 14;

std::string cell_for(const Event& event, const StringPool& pool) {
  std::string text(pool.view(event.type));
  if (text.size() > kColumnWidth - 6) {
    text.resize(kColumnWidth - 6);
  }
  switch (event.kind) {
    case EventKind::kSend:
      text += ">" + std::to_string(event.message);
      break;
    case EventKind::kReceive:
      text += "<" + std::to_string(event.message);
      break;
    case EventKind::kBlockedSend:
      text += "!";
      break;
    case EventKind::kLocal:
      break;
  }
  if (text.size() > kColumnWidth - 1) {
    text.resize(kColumnWidth - 1);
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string dump_path = flags.get_string("dump", "");
    const auto from =
        static_cast<std::size_t>(flags.get_int("from", 0));
    const auto count =
        static_cast<std::size_t>(flags.get_int("count", 40));
    const auto traces_limit =
        static_cast<std::size_t>(flags.get_int("traces-limit", 8));
    flags.check_unused();
    if (dump_path.empty()) {
      throw Error("--dump FILE is required");
    }

    StringPool pool;
    std::ifstream in(dump_path, std::ios::binary);
    if (!in) {
      throw Error("cannot read '" + dump_path + "'");
    }
    const EventStore store = reload_store(in, pool);
    const auto order = store.arrival_order();
    const std::size_t end = std::min(order.size(), from + count);
    if (from >= order.size()) {
      throw Error("--from is past the end of the computation (" +
                  std::to_string(order.size()) + " events)");
    }

    // Pick the traces that actually appear in the window, up to the limit.
    std::vector<TraceId> shown;
    for (std::size_t i = from; i < end; ++i) {
      const TraceId t = order[i].trace;
      if (std::find(shown.begin(), shown.end(), t) == shown.end()) {
        shown.push_back(t);
      }
    }
    std::sort(shown.begin(), shown.end());
    bool truncated_traces = false;
    if (shown.size() > traces_limit) {
      shown.resize(traces_limit);
      truncated_traces = true;
    }

    // Header.
    std::printf("%-6s|", "seq");
    for (const TraceId t : shown) {
      std::printf(" %-*s", static_cast<int>(kColumnWidth - 1),
                  std::string(pool.view(store.trace_name(t))).c_str());
    }
    std::printf("\n------+");
    for (std::size_t i = 0; i < shown.size() * kColumnWidth; ++i) {
      std::printf("-");
    }
    std::printf("\n");

    for (std::size_t i = from; i < end; ++i) {
      const EventId id = order[i];
      const auto column =
          std::find(shown.begin(), shown.end(), id.trace) - shown.begin();
      if (static_cast<std::size_t>(column) == shown.size()) {
        continue;  // trace beyond the display limit
      }
      std::printf("%-6zu|", i);
      for (std::size_t c = 0; c < shown.size(); ++c) {
        if (c == static_cast<std::size_t>(column)) {
          std::printf(" %-*s", static_cast<int>(kColumnWidth - 1),
                      cell_for(store.event(id), pool).c_str());
        } else {
          std::printf(" %-*s", static_cast<int>(kColumnWidth - 1), ".");
        }
      }
      std::printf("\n");
    }
    if (truncated_traces) {
      std::printf("(more traces active in this window; raise "
                  "--traces-limit)\n");
    }
    if (end < order.size()) {
      std::printf("(%zu more events; use --from %zu)\n", order.size() - end,
                  end);
    }
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_draw: %s\n", error.what());
    return 1;
  }
}
