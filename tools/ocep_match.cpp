// ocep_match — match a causal event pattern against a recorded
// computation, offline, through the same client interface live monitoring
// uses (paper §V-B's reload methodology).
//
//   ocep_match --dump FILE (--pattern FILE | --pattern-text 'SRC')
//              [--no-prune] [--no-jump] [--no-merge] [--quiet]
//
// Prints the representative subset of matches with event details, plus the
// matcher statistics and per-event timing summary.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "metrics/boxplot.h"
#include "metrics/stopwatch.h"
#include "poet/dump.h"

using namespace ocep;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string dump_path = flags.get_string("dump", "");
    const std::string pattern_path = flags.get_string("pattern", "");
    std::string pattern_text = flags.get_string("pattern-text", "");
    MatcherConfig config;
    config.domain_pruning = !flags.get_bool("no-prune", false);
    config.backjumping = !flags.get_bool("no-jump", false);
    config.merge_redundant_history = !flags.get_bool("no-merge", false);
    const bool quiet = flags.get_bool("quiet", false);
    const ClockStorage storage = flags.get_bool("sparse", false)
                                     ? ClockStorage::kSparse
                                     : ClockStorage::kDense;
    flags.check_unused();

    if (dump_path.empty()) {
      throw Error("--dump FILE is required");
    }
    if (pattern_text.empty()) {
      if (pattern_path.empty()) {
        throw Error("one of --pattern FILE or --pattern-text is required");
      }
      pattern_text = read_file(pattern_path);
    }

    StringPool pool;
    Monitor monitor(pool, storage);
    metrics::LatencyRecorder latencies;
    std::uint64_t reported = 0;
    monitor.add_pattern(pattern_text, config,
                        [&](const Match&, bool) { ++reported; });

    // Stream the dump through the monitor, timing each arrival.
    class TimedSink final : public EventSink {
     public:
      TimedSink(Monitor& monitor, metrics::LatencyRecorder& latencies)
          : monitor_(monitor), latencies_(latencies) {}
      void on_traces(const std::vector<Symbol>& names) override {
        monitor_.on_traces(names);
      }
      void on_event(const Event& event, const VectorClock& clock) override {
        metrics::Stopwatch watch;
        monitor_.on_event(event, clock);
        latencies_.add(watch.elapsed_us());
      }

     private:
      Monitor& monitor_;
      metrics::LatencyRecorder& latencies_;
    } sink(monitor, latencies);

    std::ifstream in(dump_path, std::ios::binary);
    if (!in) {
      throw Error("cannot read '" + dump_path + "'");
    }
    reload(in, pool, sink);

    const OcepMatcher& matcher = monitor.matcher(0);
    const auto& subset = matcher.subset().matches();
    std::printf("events: %" PRIu64 "   matches reported: %" PRIu64
                "   representative subset: %zu\n",
                monitor.events_seen(), reported, subset.size());
    if (!quiet) {
      for (std::size_t i = 0; i < subset.size(); ++i) {
        std::printf("match %zu:\n", i);
        for (std::size_t leaf = 0; leaf < subset[i].bindings.size();
             ++leaf) {
          const EventId id = subset[i].bindings[leaf];
          const Event& event = monitor.store().event(id);
          std::printf("  %-12s = %s #%u  type=%s text='%s'\n",
                      matcher.pattern().leaves[leaf].class_name.c_str(),
                      std::string(pool.view(
                          monitor.store().trace_name(id.trace))).c_str(),
                      id.index,
                      std::string(pool.view(event.type)).c_str(),
                      std::string(pool.view(event.text)).c_str());
        }
      }
    }
    const MatcherStats& stats = matcher.stats();
    std::printf("searches: %" PRIu64 "   nodes: %" PRIu64 "   backjumps: %"
                PRIu64 "   history: %" PRIu64 " (+%" PRIu64 " merged)\n",
                stats.searches, stats.nodes_explored, stats.backjumps,
                stats.history_entries, stats.history_merged);
    const metrics::Boxplot box = latencies.summarize();
    std::printf("per-event us: median %.2f   q3 %.2f   max %.2f\n",
                box.median, box.q3, box.max);
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_match: %s\n", error.what());
    return 1;
  }
}
