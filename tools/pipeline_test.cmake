# Runs the record -> inspect -> match workflow and fails on any error.
execute_process(COMMAND ${RECORD} --app ordering --traces 6 --events 8000
                        --out ${WORK}/pipeline.poet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ocep_record failed: ${rc}")
endif()
execute_process(COMMAND ${INSPECT} --dump ${WORK}/pipeline.poet
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "traces: 6")
  message(FATAL_ERROR "ocep_inspect failed: ${rc}\n${out}")
endif()
execute_process(COMMAND ${MATCH} --dump ${WORK}/pipeline.poet
                        --pattern ${SRC}/zk962.ocep --quiet
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "matches reported")
  message(FATAL_ERROR "ocep_match failed: ${rc}\n${out}")
endif()
