// ocep_chaos — replay a recorded computation through the lossy session
// stack under seeded fault injection and check the outcome against a
// clean-channel run.
//
//   ocep_chaos --dump FILE (--pattern FILE | --pattern-text 'SRC')
//              [--seed N] [--drop N] [--dup N] [--reorder N] [--bitflip N]
//              [--truncate N] [--disconnect-every N] [--disconnect-burst N]
//              [--feed-chunk N] [--quiet]
//
// Fault rates are per-frame, in parts per thousand.  Exit status: 0 when
// the faulty run recovered (identical matches) or degraded consistently
// (a reported subset of the clean matches); 2 on silent divergence or a
// livelocked client; 1 on usage/input errors.
//
// Live mode: `--serve HOST:PORT --tenant NAME` injects the same faults
// into a real TCP stream feeding a running ocep_served daemon; the
// verdict then comes from the server's FIN (clean vs degraded).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/flags.h"
#include "net/client.h"
#include "poet/dump.h"
#include "testing/chaos_harness.h"

using namespace ocep;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::pair<std::string, std::uint16_t> split_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw Error("--serve expects HOST:PORT, got '" + spec + "'");
  }
  const int port = std::stoi(spec.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw Error("--serve port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// Streams `source` to a live daemon through a FaultyChannel, answering
/// resyncs over the reverse channel.  Returns the process exit status.
int run_serve(const EventStore& source, const StringPool& pool,
              const std::string& serve, const std::string& tenant,
              const std::string& pattern_text,
              const testing::FaultSpec& faults) {
  net::ConnectorConfig config;
  std::tie(config.host, config.port) = split_endpoint(serve);
  config.tenant = tenant;
  if (!pattern_text.empty()) {
    config.patterns.push_back(pattern_text);
  }
  net::Connector connector(config);
  if (connector.ack().status == net::AckStatus::kRejected) {
    throw Error("server rejected the handshake: " + connector.ack().message);
  }
  testing::FaultyChannel channel(connector, faults);
  std::vector<Symbol> names;
  for (TraceId t = 0; t < source.trace_count(); ++t) {
    names.push_back(source.trace_name(t));
  }
  SessionServer session(channel, pool, names);
  const std::uint64_t total = source.event_count();
  for (std::uint64_t pos = 0; pos < total; ++pos) {
    const EventId id = source.arrival(pos);
    session.write(source.event(id), source.clock(id));
    if ((pos + 1) % 32 == 0) {
      connector.poll_reverse(&session, 0);
    }
  }
  session.finish();
  channel.flush();
  // The forward direction stays open while waiting: a dropped BYE (or any
  // tail loss the injector caused) is recovered by a server resync whose
  // snapshot answer travels forward.
  const bool fin = connector.wait_fin(&session, 30000);
  std::printf("events: %" PRIu64 "   faults injected: %" PRIu64
              "   resyncs answered: %" PRIu64 "\n",
              total, channel.stats().faults(), connector.resyncs_answered());
  if (!fin) {
    std::printf("FAIL: no FIN from the server\n");
    return 2;
  }
  if (connector.fin().degraded) {
    std::printf("OK: server reported a degraded (but consistent) stream%s%s\n",
                connector.fin().message.empty() ? "" : ": ",
                connector.fin().message.c_str());
  } else {
    std::printf("OK: server recovered a clean stream\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string dump_path = flags.get_string("dump", "");
    const std::string pattern_path = flags.get_string("pattern", "");
    std::string pattern_text = flags.get_string("pattern-text", "");

    testing::ChaosOptions options;
    testing::FaultSpec& faults = options.faults;
    faults.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    faults.drop_per_1000 =
        static_cast<std::uint32_t>(flags.get_int("drop", 0));
    faults.duplicate_per_1000 =
        static_cast<std::uint32_t>(flags.get_int("dup", 0));
    faults.reorder_per_1000 =
        static_cast<std::uint32_t>(flags.get_int("reorder", 0));
    faults.bitflip_per_1000 =
        static_cast<std::uint32_t>(flags.get_int("bitflip", 0));
    faults.truncate_per_1000 =
        static_cast<std::uint32_t>(flags.get_int("truncate", 0));
    faults.disconnect_every =
        static_cast<std::uint32_t>(flags.get_int("disconnect-every", 0));
    faults.disconnect_burst =
        static_cast<std::uint32_t>(flags.get_int("disconnect-burst", 16));
    options.feed_chunk =
        static_cast<std::size_t>(flags.get_int("feed-chunk", 0));
    const bool quiet = flags.get_bool("quiet", false);
    const std::string serve = flags.get_string("serve", "");
    const std::string tenant = flags.get_string("tenant", "chaos");
    flags.check_unused();

    if (dump_path.empty()) {
      throw Error("--dump FILE is required");
    }
    if (pattern_text.empty()) {
      if (pattern_path.empty()) {
        throw Error("one of --pattern FILE or --pattern-text is required");
      }
      pattern_text = read_file(pattern_path);
    }

    StringPool pool;
    std::ifstream in(dump_path, std::ios::binary);
    if (!in) {
      throw Error("cannot read '" + dump_path + "'");
    }
    const EventStore source = reload_store(in, pool);

    if (!serve.empty()) {
      return run_serve(source, pool, serve, tenant, pattern_text, faults);
    }

    const std::vector<std::string> clean =
        testing::clean_matches(source, pool, pattern_text);
    const testing::ChaosResult result =
        testing::run_chaos(source, pool, pattern_text, options);

    const IngestStats& ingest = result.ingest;
    std::printf("events: %" PRIu64 "/%" PRIu64
                "   faults injected: %" PRIu64 "   done: %s   degraded: %s\n",
                result.events_delivered, source.event_count(),
                result.faults.faults(), result.done ? "yes" : "no",
                result.degraded ? "yes" : "no");
    std::printf("frames: corrupt %" PRIu64 "  gap %" PRIu64
                "  skipped bytes %" PRIu64 "\n",
                ingest.frames_corrupt, ingest.frames_gap,
                ingest.bytes_skipped);
    std::printf("recovery: resyncs %" PRIu64 " (failed %" PRIu64
                ")  snapshots %" PRIu64 "  recoveries %" PRIu64
                "  ticks-to-recover %" PRIu64 "\n",
                ingest.resyncs, ingest.resync_failures, ingest.snapshots,
                ingest.recoveries, ingest.recovery_ticks);
    std::printf("linearizer: duplicates %" PRIu64 "  sheds %" PRIu64
                "  stall events %" PRIu64 "\n",
                ingest.duplicates, ingest.sheds, ingest.stall_events);
    std::printf("matches: clean %zu  faulty %zu\n", clean.size(),
                result.matches.size());
    if (!quiet) {
      for (const std::string& sig : result.matches) {
        const bool in_clean = testing::is_subset_of({sig}, clean);
        std::printf("  %s %s\n", in_clean ? " " : "!", sig.c_str());
      }
    }

    if (!result.done) {
      std::printf("FAIL: client never reached a terminal state\n");
      return 2;
    }
    if (result.matches == clean) {
      std::printf("OK: match set identical to the clean run\n");
      return 0;
    }
    if (result.degraded && testing::is_subset_of(result.matches, clean)) {
      std::printf("OK: degraded run reported a consistent subset "
                  "(%zu of %zu matches)\n",
                  result.matches.size(), clean.size());
      return 0;
    }
    std::printf("FAIL: silent divergence from the clean run\n");
    return 2;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_chaos: %s\n", error.what());
    return 1;
  }
}
