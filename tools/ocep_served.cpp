// ocep_served — run the monitor as a network daemon (docs/SERVER.md).
//
//   ocep_served [--host H] [--port P] [--admin-port P] [--shards N]
//               [--workers N] [--batch N] [--metrics]
//               [--checkpoint-dir DIR] [--store-dir DIR]
//               [--flush-interval-ms N] [--spill-bytes N]
//               [--rebase-bytes N] [--idle-timeout-ms N]
//               [--linger-ms N] [--max-tenant-bytes N]
//               [--max-corrupt-frames N] [--max-tenants N] [--max-conns N]
//               [--budget-steps N] [--budget-ns N] [--breaker-trip K]
//               [--breaker-window N] [--breaker-cooldown N]
//               [--history-bytes N]
//               [--rebalance] [--rebalance-interval-ms N]
//
// The ingest plane accepts handshaking producers (ocep_record --serve,
// ocep_chaos --serve) and multiplexes their session streams into
// per-tenant monitors; with --shards N it runs N reactor threads behind
// SO_REUSEPORT listeners with tenant-affinity placement (docs/SERVER.md).
// The admin plane answers GET /metrics (Prometheus, merged across
// shards), GET /healthz (JSON), and POST /checkpoint.  SIGINT/SIGTERM
// shut down gracefully: every tenant pipeline is drained and
// checkpointed (when --checkpoint-dir is set), so a restarted daemon
// with the same directory resumes mid-stream tenants exactly — even when
// restarted with a different shard count.  Both ports are printed on
// stdout at startup (pass 0 for ephemeral — handy under test harnesses).
#include <csignal>
#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/flags.h"
#include "net/server.h"

using namespace ocep;

namespace {

net::Server* g_server = nullptr;

void handle_signal(int /*sig*/) {
  if (g_server != nullptr) {
    g_server->request_shutdown();  // async-signal-safe: flag + self-pipe
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    net::ServerConfig config;
    config.host = flags.get_string("host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(flags.get_int("port", 7440));
    config.admin_port =
        static_cast<std::uint16_t>(flags.get_int("admin-port", 7441));
    config.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
    config.tenant.monitor.worker_threads =
        static_cast<std::size_t>(flags.get_int("workers", 0));
    config.tenant.monitor.batch_size =
        static_cast<std::size_t>(flags.get_int("batch", 64));
    config.tenant.monitor.metrics = flags.get_bool("metrics", false);
    config.checkpoint_dir = flags.get_string("checkpoint-dir", "");
    // Crash-consistent durability (docs/ROBUSTNESS.md "Durability"):
    // --store-dir switches tenant persistence from whole-image .ckp
    // files to an append-only segment log with group-committed input
    // deltas; a SIGKILL loses at most one --flush-interval-ms window,
    // and the acknowledged resume position heals even that on reconnect.
    config.store_dir = flags.get_string("store-dir", "");
    config.flush_interval_ms =
        static_cast<std::uint64_t>(flags.get_int("flush-interval-ms", 50));
    config.spill_bytes =
        static_cast<std::uint64_t>(flags.get_int("spill-bytes", 0));
    config.store_rebase_bytes = static_cast<std::uint64_t>(
        flags.get_int("rebase-bytes", 1 << 20));
    config.idle_timeout_ms =
        static_cast<std::uint64_t>(flags.get_int("idle-timeout-ms", 30000));
    config.detach_linger_ms =
        static_cast<std::uint64_t>(flags.get_int("linger-ms", 2000));
    config.max_tenant_bytes =
        static_cast<std::uint64_t>(flags.get_int("max-tenant-bytes", 0));
    config.max_corrupt_frames =
        static_cast<std::uint64_t>(flags.get_int("max-corrupt-frames", 4096));
    config.max_tenants =
        static_cast<std::size_t>(flags.get_int("max-tenants", 256));
    config.max_connections =
        static_cast<std::size_t>(flags.get_int("max-conns", 1024));
    MatcherConfig& matcher = config.tenant.matcher;
    matcher.budget.max_steps =
        static_cast<std::uint64_t>(flags.get_int("budget-steps", 0));
    matcher.budget.deadline_ns =
        static_cast<std::uint64_t>(flags.get_int("budget-ns", 0));
    matcher.breaker.trip_failures =
        static_cast<std::uint32_t>(flags.get_int("breaker-trip", 0));
    matcher.breaker.window_observes =
        static_cast<std::uint32_t>(flags.get_int("breaker-window", 1024));
    matcher.breaker.cooldown_observes =
        static_cast<std::uint32_t>(flags.get_int("breaker-cooldown", 256));
    matcher.history_bytes_limit =
        static_cast<std::size_t>(flags.get_int("history-bytes", 0));
    // Live rebalancing (docs/SERVER.md "Rebalancing"): with --rebalance
    // the admin thread migrates hot tenants between shards and the
    // manual trigger POST /rebalance is useful even at the default
    // interval.  A no-op at --shards 1.
    config.rebalance = flags.get_bool("rebalance", false);
    config.rebalance_interval_ms = static_cast<std::uint64_t>(
        flags.get_int("rebalance-interval-ms", 500));
    flags.check_unused();

    net::Server server(std::move(config));
    g_server = &server;
    struct sigaction action {};
    action.sa_handler = handle_signal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    std::printf("ocep_served: ingest port %u admin port %u shards %zu\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned>(server.admin_port()),
                server.shard_count());
    std::fflush(stdout);
    server.run();
    std::printf("ocep_served: shut down (%zu tenants)\n",
                server.tenant_count());
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_served: %s\n", error.what());
    return 1;
  }
}
