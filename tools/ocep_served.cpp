// ocep_served — run the monitor as a network daemon (docs/SERVER.md).
//
//   ocep_served [--host H] [--port P] [--admin-port P] [--shards N]
//               [--workers N] [--batch N] [--metrics]
//               [--checkpoint-dir DIR] [--store-dir DIR]
//               [--flush-interval-ms N] [--spill-bytes N]
//               [--pool-bytes N] [--compact-ratio R]
//               [--rebase-bytes N] [--idle-timeout-ms N]
//               [--linger-ms N] [--max-tenant-bytes N]
//               [--max-corrupt-frames N] [--max-tenants N] [--max-conns N]
//               [--budget-steps N] [--budget-ns N] [--breaker-trip K]
//               [--breaker-window N] [--breaker-cooldown N]
//               [--history-bytes N]
//               [--rebalance] [--rebalance-interval-ms N]
//               [--replicate-to HOST:PORT] [--standby]
//
// The ingest plane accepts handshaking producers (ocep_record --serve,
// ocep_chaos --serve) and multiplexes their session streams into
// per-tenant monitors; with --shards N it runs N reactor threads behind
// SO_REUSEPORT listeners with tenant-affinity placement (docs/SERVER.md).
// The admin plane answers GET /metrics (Prometheus, merged across
// shards), GET /healthz (JSON), and POST /checkpoint.  SIGINT/SIGTERM
// shut down gracefully: every tenant pipeline is drained and
// checkpointed (when --checkpoint-dir is set), so a restarted daemon
// with the same directory resumes mid-stream tenants exactly — even when
// restarted with a different shard count.  Both ports are printed on
// stdout at startup (pass 0 for ephemeral — handy under test harnesses).
//
// Warm-standby replication (docs/ROBUSTNESS.md "Replication"):
// --replicate-to streams every shard's segment log to a follower daemon
// started with --standby, which mirrors the store on disk and, on POST
// /promote (or SIGUSR1), restarts itself as a full primary over the
// replicated store — clients reconnect and resume via the session
// resync path, exactly as after a crash restart of the old primary.
#include <csignal>
#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/flags.h"
#include "net/server.h"
#include "net/standby.h"

using namespace ocep;

namespace {

net::Server* g_server = nullptr;
net::Standby* g_standby = nullptr;

void handle_signal(int /*sig*/) {
  if (g_server != nullptr) {
    g_server->request_shutdown();  // async-signal-safe: flag + self-pipe
  }
  if (g_standby != nullptr) {
    g_standby->request_shutdown();
  }
}

void handle_promote(int /*sig*/) {
  if (g_standby != nullptr) {
    g_standby->request_promote();
  }
}

/// Splits "host:port"; throws on a malformed value.
void parse_host_port(const std::string& value, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == value.size()) {
    throw Error("--replicate-to wants HOST:PORT, got '" + value + "'");
  }
  host = value.substr(0, colon);
  const int parsed = std::stoi(value.substr(colon + 1));
  if (parsed <= 0 || parsed > 65535) {
    throw Error("--replicate-to port out of range in '" + value + "'");
  }
  port = static_cast<std::uint16_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    net::ServerConfig config;
    config.host = flags.get_string("host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(flags.get_int("port", 7440));
    config.admin_port =
        static_cast<std::uint16_t>(flags.get_int("admin-port", 7441));
    config.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
    config.tenant.monitor.worker_threads =
        static_cast<std::size_t>(flags.get_int("workers", 0));
    config.tenant.monitor.batch_size =
        static_cast<std::size_t>(flags.get_int("batch", 64));
    config.tenant.monitor.metrics = flags.get_bool("metrics", false);
    config.checkpoint_dir = flags.get_string("checkpoint-dir", "");
    // Crash-consistent durability (docs/ROBUSTNESS.md "Durability"):
    // --store-dir switches tenant persistence from whole-image .ckp
    // files to an append-only segment log with group-committed input
    // deltas; a SIGKILL loses at most one --flush-interval-ms window,
    // and the acknowledged resume position heals even that on reconnect.
    config.store_dir = flags.get_string("store-dir", "");
    config.flush_interval_ms =
        static_cast<std::uint64_t>(flags.get_int("flush-interval-ms", 50));
    config.spill_bytes =
        static_cast<std::uint64_t>(flags.get_int("spill-bytes", 0));
    // Span storage tier (docs/ROBUSTNESS.md "Durability"): --pool-bytes
    // budgets the shared buffer pool and turns matcher history eviction
    // into span spill/fault-back; --compact-ratio enables the background
    // compactor that rewrites dead segments and runs re-bases off the
    // flush tick.  Both default off.
    config.pool_bytes =
        static_cast<std::uint64_t>(flags.get_int("pool-bytes", 0));
    config.compact_ratio = flags.get_double("compact-ratio", 0.0);
    config.store_rebase_bytes = static_cast<std::uint64_t>(
        flags.get_int("rebase-bytes", 1 << 20));
    config.idle_timeout_ms =
        static_cast<std::uint64_t>(flags.get_int("idle-timeout-ms", 30000));
    config.detach_linger_ms =
        static_cast<std::uint64_t>(flags.get_int("linger-ms", 2000));
    config.max_tenant_bytes =
        static_cast<std::uint64_t>(flags.get_int("max-tenant-bytes", 0));
    config.max_corrupt_frames =
        static_cast<std::uint64_t>(flags.get_int("max-corrupt-frames", 4096));
    config.max_tenants =
        static_cast<std::size_t>(flags.get_int("max-tenants", 256));
    config.max_connections =
        static_cast<std::size_t>(flags.get_int("max-conns", 1024));
    MatcherConfig& matcher = config.tenant.matcher;
    matcher.budget.max_steps =
        static_cast<std::uint64_t>(flags.get_int("budget-steps", 0));
    matcher.budget.deadline_ns =
        static_cast<std::uint64_t>(flags.get_int("budget-ns", 0));
    matcher.breaker.trip_failures =
        static_cast<std::uint32_t>(flags.get_int("breaker-trip", 0));
    matcher.breaker.window_observes =
        static_cast<std::uint32_t>(flags.get_int("breaker-window", 1024));
    matcher.breaker.cooldown_observes =
        static_cast<std::uint32_t>(flags.get_int("breaker-cooldown", 256));
    matcher.history_bytes_limit =
        static_cast<std::size_t>(flags.get_int("history-bytes", 0));
    // Live rebalancing (docs/SERVER.md "Rebalancing"): with --rebalance
    // the admin thread migrates hot tenants between shards and the
    // manual trigger POST /rebalance is useful even at the default
    // interval.  A no-op at --shards 1.
    config.rebalance = flags.get_bool("rebalance", false);
    config.rebalance_interval_ms = static_cast<std::uint64_t>(
        flags.get_int("rebalance-interval-ms", 500));
    const std::string replicate_to = flags.get_string("replicate-to", "");
    if (!replicate_to.empty()) {
      parse_host_port(replicate_to, config.replicate_host,
                      config.replicate_port);
      if (config.store_dir.empty()) {
        throw Error("--replicate-to requires --store-dir");
      }
    }
    const bool standby = flags.get_bool("standby", false);
    flags.check_unused();

    struct sigaction action {};
    action.sa_handler = handle_signal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    if (standby) {
      if (config.store_dir.empty()) {
        throw Error("--standby requires --store-dir");
      }
      net::StandbyConfig standby_config;
      standby_config.host = config.host;
      standby_config.port = config.port;
      standby_config.admin_port = config.admin_port;
      standby_config.store_dir = config.store_dir;
      net::Standby follower(std::move(standby_config));
      g_standby = &follower;
      struct sigaction promote {};
      promote.sa_handler = handle_promote;
      ::sigaction(SIGUSR1, &promote, nullptr);
      // Reuse the exact ports after promotion, whatever was bound.
      config.port = follower.port();
      config.admin_port = follower.admin_port();
      std::printf("ocep_served: standby ingest port %u admin port %u\n",
                  static_cast<unsigned>(follower.port()),
                  static_cast<unsigned>(follower.admin_port()));
      std::fflush(stdout);
      const net::StandbyExit exit_reason = follower.run();
      g_standby = nullptr;
      if (exit_reason == net::StandbyExit::kShutdown) {
        std::printf("ocep_served: standby shut down\n");
        return 0;
      }
      std::printf("ocep_served: promoting\n");
      std::fflush(stdout);
      // Fall through: construct the Server on the replicated store —
      // the same replay a crash-restarted primary performs.
    }

    net::Server server(std::move(config));
    g_server = &server;

    std::printf("ocep_served: ingest port %u admin port %u shards %zu\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned>(server.admin_port()),
                server.shard_count());
    std::fflush(stdout);
    server.run();
    std::printf("ocep_served: shut down (%zu tenants)\n",
                server.tenant_count());
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_served: %s\n", error.what());
    return 1;
  }
}
