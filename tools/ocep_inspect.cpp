// ocep_inspect — summarize a recorded computation: traces, event kinds,
// message statistics, and a sampled concurrency profile.
//
//   ocep_inspect --dump FILE [--relate T1:I1 T2:I2]
//                [--metrics [--pattern TEXT] [--metrics-format FMT]]
//   ocep_inspect --store DIR [--compare DIR] [--spans]
//                [--health [--health-format text|json]
//                 [--budget-steps N] [--budget-ns N] [--breaker-trip K]
//                 [--breaker-window N] [--breaker-cooldown N]
//                 [--history-bytes N]]
//
// With --relate, prints the exact causal relationship between two events
// (the two-integer-comparison query of §III-A).  With --metrics, the
// computation is replayed through a metrics-enabled Monitor (matching
// --pattern when given) and the telemetry registry is printed in
// Prometheus text format (--metrics-format prom|json|text).  With
// --health, the replay additionally reports the governance snapshot
// (docs/GOVERNANCE.md) — breaker states, budget aborts, evictions — under
// the budget/breaker/byte-cap flags above (all unlimited by default).
//
// With --store, verifies a tenant store directory (a daemon's --store-dir
// root, or one shard-N log inside it) without touching it: per-tenant
// record counts (including spilled leaf-history span records, whose
// payloads are decode-verified), torn-tail report, and CRC/structure
// failures with positioned offsets.  Exit status 1 when any fatal
// corruption is found (a torn tail alone — the expected SIGKILL image —
// is healthy).  --spans additionally dumps every span record: its
// {pattern, leaf, trace, seq} fingerprint, entry count, and index range.
//
// With --store A --compare B, additionally byte-prefix-compares the two
// store roots (docs/ROBUSTNESS.md "Replication"): every segment present
// in both must agree on its common prefix — a replica is a prefix of its
// primary, so any mismatch is divergence (exit 1).  Segments or shards
// on only one side are lag/compaction skew and only noted.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/monitor.h"
#include "poet/dump.h"
#include "poet/linearizer.h"
#include "poet/replay.h"
#include "store/replication.h"
#include "store/segment_log.h"
#include "store/tenant_store.h"

using namespace ocep;

namespace {

EventId parse_event(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    throw Error("expected TRACE:INDEX, got '" + text + "'");
  }
  EventId id;
  id.trace = static_cast<TraceId>(std::stoul(text.substr(0, colon)));
  id.index = static_cast<EventIndex>(std::stoul(text.substr(colon + 1)));
  return id;
}

const char* relation_name(Relation relation) {
  switch (relation) {
    case Relation::kEqual: return "equal";
    case Relation::kBefore: return "happens-before";
    case Relation::kAfter: return "happens-after";
    case Relation::kConcurrent: return "concurrent";
  }
  return "?";
}

/// Verifies one segment-log directory; returns whether it is free of
/// fatal corruption.
bool inspect_store_log(const std::string& dir, bool dump_spans) {
  const store::VerifyReport report = store::verify_log(dir);
  std::printf("%s:\n", dir.c_str());
  std::printf("  segments %" PRIu64 "   records %" PRIu64
              "   record bytes %" PRIu64 "   torn tail bytes %" PRIu64 "\n",
              report.segments, report.records, report.record_bytes,
              report.torn_tail_bytes);
  for (const auto& [name, counts] : report.tenants) {
    std::printf("  tenant %-24s genesis %" PRIu64 "  bases %" PRIu64
                "  deltas %" PRIu64 "  tombstones %" PRIu64
                "  spans %" PRIu64 "  bytes %" PRIu64 "  epoch %" PRIu64 "\n",
                name.c_str(), counts.genesis, counts.bases, counts.deltas,
                counts.tombstones, counts.spans, counts.bytes,
                counts.last_epoch);
  }
  for (const store::VerifyIssue& issue : report.issues) {
    std::printf("  %s: %s at byte %" PRId64 ": %s\n",
                issue.fatal ? "CORRUPT" : "note", issue.file.c_str(),
                static_cast<std::int64_t>(issue.offset),
                issue.message.c_str());
  }
  if (report.issues.empty()) {
    std::printf("  clean\n");
  }
  if (dump_spans) {
    // A second, read-only pass in append order; records that fail CRC
    // were already reported above, so this scan only sees valid frames.
    try {
      store::LogConfig config;
      config.dir = dir;
      config.read_only = true;
      const store::SegmentLog log(
          std::move(config),
          [](const store::Record& record, const store::RecordRef& ref) {
            if (record.type != store::RecordType::kSpan) {
              return;
            }
            store::SpanPayload span;
            if (!store::decode_span_payload(record.payload, span)) {
              std::printf("  span %-24s seg %u offset %" PRIu64
                          "  (payload does not decode)\n",
                          record.name.c_str(), ref.segment, ref.offset);
              return;
            }
            const std::uint64_t first =
                span.entries.empty() ? 0 : span.entries.front().first;
            const std::uint64_t last =
                span.entries.empty() ? 0 : span.entries.back().first;
            std::printf("  span %-24s pattern %u  leaf %u  trace %" PRIu64
                        "  seq %" PRIu64 "  entries %zu  indices %" PRIu64
                        "..%" PRIu64 "  epoch %" PRIu64 "\n",
                        record.name.c_str(), span.key.pattern, span.key.leaf,
                        span.key.trace, span.key.seq, span.entries.size(),
                        first, last, record.epoch);
          });
    } catch (const Error& error) {
      std::printf("  span dump failed: %s\n", error.what());
    }
  }
  return report.ok();
}

/// --store DIR: a daemon store root (shard-N subdirectories) or a single
/// log directory.  Exit code 1 on any fatal finding.
int inspect_store(const std::string& root, bool dump_spans) {
  namespace fs = std::filesystem;
  std::vector<std::string> logs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("shard-", 0) == 0) {
      logs.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw Error("cannot read store directory '" + root + "'");
  }
  if (logs.empty()) {
    logs.push_back(root);  // a single shard log named directly
  }
  std::sort(logs.begin(), logs.end());
  bool ok = true;
  for (const std::string& dir : logs) {
    ok = inspect_store_log(dir, dump_spans) && ok;
  }
  std::printf("store %s: %s\n", root.c_str(), ok ? "OK" : "CORRUPT");
  return ok ? 0 : 1;
}

/// --store A --compare B: byte-prefix divergence check.
int compare_stores(const std::string& a, const std::string& b) {
  const store::CompareReport report = store::compare_store_dirs(a, b);
  std::printf("compare %s vs %s:\n", a.c_str(), b.c_str());
  std::printf("  logs %" PRIu64 "   segments %" PRIu64
              "   bytes compared %" PRIu64 "\n",
              report.logs, report.segments, report.bytes_compared);
  for (const store::CompareIssue& issue : report.issues) {
    std::printf("  DIVERGED %s: %s\n", issue.path.c_str(),
                issue.message.c_str());
  }
  std::printf("compare: %s\n", report.ok() ? "MATCH" : "DIVERGED");
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const std::string store_dir = flags.get_string("store", "");
    const std::string compare_dir = flags.get_string("compare", "");
    const bool dump_spans = flags.get_bool("spans", false);
    const std::string dump_path = flags.get_string("dump", "");
    const std::string relate_a = flags.get_string("relate", "");
    const std::string relate_b = flags.get_string("with", "");
    const bool metrics = flags.get_bool("metrics", false);
    const std::string pattern_text = flags.get_string("pattern", "");
    const std::string metrics_format =
        flags.get_string("metrics-format", "prom");
    const bool health = flags.get_bool("health", false);
    const std::string health_format =
        flags.get_string("health-format", "text");
    MatcherConfig matcher_config;
    matcher_config.budget.max_steps =
        static_cast<std::uint64_t>(flags.get_int("budget-steps", 0));
    matcher_config.budget.deadline_ns =
        static_cast<std::uint64_t>(flags.get_int("budget-ns", 0));
    matcher_config.breaker.trip_failures =
        static_cast<std::uint32_t>(flags.get_int("breaker-trip", 0));
    matcher_config.breaker.window_observes =
        static_cast<std::uint64_t>(flags.get_int("breaker-window", 1024));
    matcher_config.breaker.cooldown_observes =
        static_cast<std::uint64_t>(flags.get_int("breaker-cooldown", 256));
    matcher_config.history_bytes_limit =
        static_cast<std::size_t>(flags.get_int("history-bytes", 0));
    flags.check_unused();
    if (!compare_dir.empty()) {
      if (store_dir.empty()) {
        throw Error("--compare requires --store");
      }
      return compare_stores(store_dir, compare_dir);
    }
    if (!store_dir.empty()) {
      return inspect_store(store_dir, dump_spans);
    }
    if (dump_path.empty()) {
      throw Error("--dump FILE or --store DIR is required");
    }

    StringPool pool;
    std::ifstream in(dump_path, std::ios::binary);
    if (!in) {
      throw Error("cannot read '" + dump_path + "'");
    }
    const EventStore store = reload_store(in, pool);

    std::printf("traces: %zu   events: %zu   approx memory: %.1f MiB\n",
                store.trace_count(), store.event_count(),
                static_cast<double>(store.approx_bytes()) / (1024 * 1024));

    std::uint64_t kinds[4] = {0, 0, 0, 0};
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
        kinds[static_cast<int>(store.event(EventId{t, i}).kind)] += 1;
      }
    }
    std::printf("kinds: local %" PRIu64 "  send %" PRIu64 "  receive %"
                PRIu64 "  blocked_send %" PRIu64 "\n",
                kinds[0], kinds[1], kinds[2], kinds[3]);

    std::printf("%-12s %10s   first/last event types\n", "trace", "events");
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      const EventIndex size = store.trace_size(t);
      std::string first = "-", last = "-";
      if (size > 0) {
        first = pool.view(store.event(EventId{t, 1}).type);
        last = pool.view(store.event(EventId{t, size}).type);
      }
      std::printf("%-12s %10u   %s .. %s\n",
                  std::string(pool.view(store.trace_name(t))).c_str(), size,
                  first.c_str(), last.c_str());
      if (t >= 19 && store.trace_count() > 20) {
        std::printf("... (%zu more traces)\n", store.trace_count() - 20);
        break;
      }
    }

    // Sampled concurrency profile: how much genuine parallelism the
    // computation has.
    if (store.event_count() >= 2 && store.trace_count() >= 2) {
      Rng rng(12345);
      std::uint64_t concurrent = 0, total = 0;
      for (int i = 0; i < 10000; ++i) {
        const auto t1 = static_cast<TraceId>(rng.below(store.trace_count()));
        const auto t2 = static_cast<TraceId>(rng.below(store.trace_count()));
        if (store.trace_size(t1) == 0 || store.trace_size(t2) == 0 ||
            t1 == t2) {
          continue;
        }
        const EventId a{t1, static_cast<EventIndex>(
                                1 + rng.below(store.trace_size(t1)))};
        const EventId b{t2, static_cast<EventIndex>(
                                1 + rng.below(store.trace_size(t2)))};
        ++total;
        concurrent +=
            store.relate(a, b) == Relation::kConcurrent ? 1U : 0U;
      }
      if (total > 0) {
        std::printf("sampled cross-trace concurrency: %.1f%%\n",
                    100.0 * static_cast<double>(concurrent) /
                        static_cast<double>(total));
      }
    }

    if (!relate_a.empty() && !relate_b.empty()) {
      const EventId a = parse_event(relate_a);
      const EventId b = parse_event(relate_b);
      std::printf("(%u,%u) is %s (%u,%u)\n", a.trace, a.index,
                  relation_name(store.relate(a, b)), b.trace, b.index);
    }

    if (metrics || health) {
      // Replay the computation through a Monitor, going through a
      // Linearizer so delivery/ingest telemetry is populated too.
      MonitorConfig config;
      config.metrics = metrics;
      Monitor monitor(pool, config, store.storage());
      if (!pattern_text.empty()) {
        monitor.add_pattern(pattern_text, matcher_config);
      }
      std::vector<Symbol> names;
      names.reserve(store.trace_count());
      for (TraceId t = 0; t < store.trace_count(); ++t) {
        names.push_back(store.trace_name(t));
      }
      monitor.on_traces(names);
      Linearizer linearizer(store.trace_count(), monitor);
      if (metrics) {
        linearizer.bind_metrics(monitor.metrics());
      }
      monitor.set_ingest_source(
          [&linearizer] { return linearizer.ingest_stats(); });
      for_each_linearized(store,
                          [&linearizer](const Event& event,
                                        const VectorClock& clock) {
                            linearizer.offer(event, clock);
                          });
      monitor.drain();
      if (metrics) {
        std::string rendered;
        if (metrics_format == "json") {
          rendered = monitor.metrics().to_json();
        } else if (metrics_format == "text") {
          rendered = monitor.metrics().to_text();
        } else if (metrics_format == "prom") {
          rendered = monitor.metrics().to_prometheus();
        } else {
          throw Error("unknown --metrics-format '" + metrics_format +
                      "' (expected prom, json, or text)");
        }
        std::fputs(rendered.c_str(), stdout);
      }
      if (health) {
        const HealthReport report = monitor.health();
        if (health_format == "json") {
          std::string rendered = report.to_json();
          rendered += '\n';
          std::fputs(rendered.c_str(), stdout);
        } else if (health_format == "text") {
          std::fputs(report.to_text().c_str(), stdout);
        } else {
          throw Error("unknown --health-format '" + health_format +
                      "' (expected text or json)");
        }
      }
    }
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ocep_inspect: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ocep_inspect: %s\n", error.what());
    return 1;
  }
}
